// Package db implements the LSM-tree storage engine and the RocksMash
// hybrid-placement designs on top of it: level-based local/cloud placement,
// the LSM-aware persistent cache, and extended-WAL parallel recovery.
package db

import (
	"time"

	"rocksmash/internal/cache"
	"rocksmash/internal/event"
	"rocksmash/internal/flight"
	"rocksmash/internal/pcache"
	"rocksmash/internal/retry"
	"rocksmash/internal/sstable"
	"rocksmash/internal/storage"
)

// Policy selects how the store distributes data between the local tier and
// the cloud tier. The non-Mash policies are the paper's comparison schemes
// expressed on the same engine.
type Policy int

const (
	// PolicyMash is the paper's design: upper levels and all metadata
	// local, deeper levels in cloud behind the LSM-aware persistent cache,
	// extended WAL with parallel recovery.
	PolicyMash Policy = iota
	// PolicyLocalOnly keeps every file on local storage (RocksDB-on-SSD
	// baseline): fastest, most expensive, capacity-bound.
	PolicyLocalOnly
	// PolicyCloudOnly keeps every SSTable in cloud storage with only the
	// in-memory block cache (RocksDB-on-cloud worst case).
	PolicyCloudOnly
	// PolicyCloudLRU keeps every SSTable in cloud storage behind a
	// generic (non-LSM-aware) persistent LRU cache — the rocksdb-cloud
	// style state of the art the paper improves on.
	PolicyCloudLRU
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyMash:
		return "mash"
	case PolicyLocalOnly:
		return "local-only"
	case PolicyCloudOnly:
		return "cloud-only"
	case PolicyCloudLRU:
		return "cloud-lru"
	default:
		return "unknown"
	}
}

// Options configures a DB.
type Options struct {
	// Policy selects the placement scheme. Default PolicyMash.
	Policy Policy
	// LocalLevels is the number of top levels kept on local storage under
	// PolicyMash (L0..LocalLevels-1 local, the rest cloud). 0 means the
	// default (2); -1 places every level in cloud (useful for isolating
	// the persistent cache in ablations).
	LocalLevels int

	// MemtableBytes triggers a flush when the memtable reaches this size.
	MemtableBytes int64
	// BlockBytes is the SSTable data-block size.
	BlockBytes int
	// BloomBitsPerKey sizes table filters (0 disables).
	BloomBitsPerKey int
	// Compression is the SSTable data-block codec. Compressing shrinks
	// cloud capacity and transfer (and their cost) at some CPU expense.
	Compression sstable.Compression
	// BlockCacheBytes bounds the in-memory block cache.
	BlockCacheBytes int64
	// MaxOpenTables bounds concurrently open table readers (and thus file
	// descriptors); least-recently-used idle tables are closed past it.
	MaxOpenTables int

	// PCacheBytes bounds the persistent cache (PolicyMash / PolicyCloudLRU).
	PCacheBytes int64
	// PCacheRegionBytes is the PCache allocation unit.
	PCacheRegionBytes int64
	// CompactionInheritance warms compaction outputs whose inputs were hot
	// in the persistent cache (PolicyMash only). Default true; disable for
	// the Fig. 10 ablation.
	CompactionInheritance bool

	// CompactionPrefetchBlocks coalesces data-block reads of cloud-tier
	// compaction inputs: a prefetcher walks each input's block index ahead
	// of the merge iterator and issues range GETs of up to this many blocks
	// into a lookahead buffer, hiding per-request first-byte latency.
	// <= 1 disables prefetch (each block is its own GET, today's behavior).
	CompactionPrefetchBlocks int
	// UploadParallelism is the number of compaction output tables uploaded
	// concurrently, overlapped with the ongoing merge. <= 1 uploads
	// serially on the compaction goroutine (today's behavior).
	UploadParallelism int
	// IteratorReadaheadBlocks escalates sequential scans over cloud-tier
	// tables to multi-block range GETs of up to this many blocks; the extra
	// blocks are bulk-admitted into the persistent cache and block cache.
	// <= 1 disables the plain path's adjacency-heuristic readahead.
	// Sorted-view scans always read ahead (their block schedule is exact,
	// so there is no misprediction to guard against): they use this width
	// when it is set and a 16-block default otherwise.
	IteratorReadaheadBlocks int

	// L0CompactTrigger is the L0 file count that triggers compaction.
	L0CompactTrigger int
	// L0StallFiles applies write backpressure when L0 reaches this count.
	L0StallFiles int
	// LevelBaseBytes is the target size of L1; each deeper level is
	// LevelMultiplier times larger.
	LevelBaseBytes int64
	// LevelMultiplier is the per-level size ratio. Default 10.
	LevelMultiplier int
	// TargetFileBytes is the compaction output file size target.
	TargetFileBytes int64

	// WALSync fsyncs the WAL on every commit.
	WALSync bool
	// WALSegmentBytes rolls WAL segments at this size.
	WALSegmentBytes int64
	// ExtendedWAL enables the eWAL segment index (skip-flushed metadata).
	// Disable for the Fig. 11 serial-recovery baseline.
	ExtendedWAL bool
	// WALCloudBackup uploads every sealed WAL segment to the cloud tier,
	// protecting unflushed writes against loss of the local device.
	// Recovery transparently restores missing local segments from cloud.
	WALCloudBackup bool
	// RecoveryParallelism is the number of WAL segments recovered
	// concurrently. 1 reproduces stock serial recovery.
	RecoveryParallelism int

	// CloudRetry bounds how cloud requests are retried (attempts, backoff,
	// deadline). Zero fields take retry.Default(); a custom Retryable is
	// composed with the built-in classification (data-absence and
	// breaker-open errors never retry).
	CloudRetry retry.Policy
	// CloudBreaker tunes the circuit breaker guarding the cloud tier: after
	// FailureThreshold consecutive failed requests the breaker opens, cloud
	// requests fail fast with ErrCloudUnavailable, and flushes/compactions
	// land their outputs locally (degraded mode) until a half-open probe
	// succeeds. Zero fields take the breaker defaults.
	CloudBreaker retry.BreakerConfig
	// PendingDrainInterval is how often the background drainer retries
	// deferred deletes and migrates degraded-mode tables to the cloud.
	// Default 200ms.
	PendingDrainInterval time.Duration
	// DisableDegradedMode makes cloud upload failures surface as flush and
	// compaction errors (wedging the DB, today's strict behavior) instead of
	// landing outputs locally as pending-upload tables.
	DisableDegradedMode bool

	// LocalBreaker tunes the circuit breaker guarding the local tier — the
	// symmetric twin of CloudBreaker. After FailureThreshold consecutive
	// failed local writes (ENOSPC, fsync EIO) the breaker opens and the store
	// enters local-degraded mode: flush and compaction outputs that belong on
	// the local tier land cloud-direct instead, the persistent cache stops
	// admitting, and WAL segments spill to the cloud backup. A half-open
	// probe (the next local write attempt) closes it again, after which the
	// drainer migrates misplaced tables back. Zero fields take the breaker
	// defaults.
	LocalBreaker retry.BreakerConfig
	// DisableLocalDegradedMode makes local write failures surface as flush
	// and compaction errors instead of landing outputs cloud-direct.
	DisableLocalDegradedMode bool

	// ScrubInterval enables the background corruption scrubber: every
	// interval one pass walks the local tier's artifacts (SSTable blocks,
	// metadata sidecars, WAL segments, pcache index snapshot) verifying
	// checksums, and repairs damaged artifacts that have a cloud source of
	// truth in place. 0 (the default) disables the background loop;
	// DB.Scrub() remains available for on-demand passes either way.
	ScrubInterval time.Duration
	// MirrorLocalLevels lazily uploads local-level SSTables to the cloud tier
	// off the write path (riding the pending drainer), so every table has a
	// cloud source of truth and any local corruption is repairable. Mirror
	// uploads never block flushes or compactions; until a table's mirror
	// exists it is protected only by detection (typed corruption errors, no
	// silent wrong reads).
	MirrorLocalLevels bool

	// Shards splits the keyspace into this many independent sub-LSMs
	// behind one DB facade. Each shard owns a full engine — memtable
	// stack, eWAL segment stream, flush queue, compaction scheduler —
	// rooted under its own storage prefix, so writers, flushes, and
	// compactions on different shards never contend on the same mutexes
	// or WAL writer. The block cache, persistent cache, table cache,
	// cloud retry/breaker, and sequence-number source stay shared and
	// global: snapshots and iterators remain consistent across shards.
	// <= 1 (the default) keeps the single-LSM layout, byte-compatible
	// with stores written before sharding existed. The shard count is
	// part of the on-disk layout: reopen with the same value.
	Shards int

	// DisableCommitPipeline reverts the write path to the serial
	// commit-mutex design: one writer at a time appends to the WAL and
	// applies to the memtable. The default (pipelined) path group-commits
	// concurrent writers — a leader batches the queue into one vectored WAL
	// append with a single amortized fsync while members apply to the
	// memtable in parallel. Disable only for bisection or as a comparison
	// baseline; results are identical either way, including post-crash
	// recovered state.
	DisableCommitPipeline bool

	// DisableSortedViews turns off the per-level sorted-view sidecars
	// (REMIX-style cursor runs) that accelerate range scans over levels
	// >= 1. With views disabled every scan merges the level's tables
	// through per-table iterators; with them enabled (the default) a scan
	// seeks once in the view's globally sorted block schedule and streams
	// blocks with exact cloud readahead. Correctness is identical either
	// way — views are derived data rebuilt from table indexes.
	DisableSortedViews bool

	// VitalsInterval enables continuous time-series telemetry: a background
	// sampler snapshots Metrics() into a fixed-size lock-free ring at this
	// period and derives windowed rates (ops/s, bytes/s per tier, cache hit
	// ratios, write-amp, $/hour — see internal/vitals and DB.Vitals). 0
	// (the default) disables sampling entirely: no goroutine starts and the
	// hot paths are untouched. In a sharded store one sampler runs on the
	// facade, snapshotting the aggregated cross-shard view.
	VitalsInterval time.Duration
	// VitalsHistory is the sample ring capacity (how much history /vitals
	// and `mashctl top` can see). 0 means vitals.DefaultHistory (720 — 12
	// minutes at a 1s interval).
	VitalsHistory int

	// FlightRecorder enables the flight recorder: a bounded lock-free ring
	// of recent engine events tapped off the listener chain, an anomaly
	// detector evaluated on every vitals tick (latency spikes, write-stall
	// onset, breaker trips, compaction-debt growth, cache collapse, shard
	// skew, cost spikes — see internal/flight and DESIGN.md §5j), and
	// atomic postmortem bundle dumps when a detector fires. Off (the
	// default) the flight path does not exist: no ring, no detector, no
	// per-event or per-write cost. Enabling it defaults VitalsInterval to
	// 1s when unset (the detector rides the vitals tick). In a sharded
	// store the recorder and detector live on the facade.
	FlightRecorder bool
	// FlightHistory is the event-ring capacity (entries). 0 means 1024.
	FlightHistory int
	// FlightDir overrides where incident bundles are written. Empty derives
	// <local root>/../flight when the local backend is a real directory;
	// otherwise bundling is disabled (detection still runs).
	FlightDir string
	// FlightMaxBundles caps retained bundle directories (oldest pruned).
	// 0 means 8.
	FlightMaxBundles int
	// FlightBundleInterval rate-limits bundle dumps: at most one bundle per
	// interval regardless of how many detectors fire. 0 means 30s.
	FlightBundleInterval time.Duration
	// FlightThresholds tunes the detector rules; zero fields take the
	// documented defaults.
	FlightThresholds flight.Thresholds

	// ReadProfileSampleRate selects 1-in-N Gets for full (timed) read-path
	// profiling; the cheap counter core (levels probed, tables touched,
	// bloom outcomes, blocks by tier) is recorded for every Get regardless.
	// 0 means the default (64), 1 times every Get, and a negative value
	// disables profiling entirely — Gets then take the nil-profile fast
	// path and record nothing.
	ReadProfileSampleRate int

	// EventListener receives engine lifecycle events (flush, compaction,
	// upload, stall, cache transitions). Nil disables event dispatch at zero
	// cost; see package event for the listener contract.
	EventListener event.Listener
	// TracePath, when set, appends every event as a JSON line to this file
	// (machine-readable run trace, decodable with event.ReadTraceFile and
	// summarized by `mashctl trace`). Combines with EventListener.
	TracePath string
	// TraceRotateBytes rotates the trace file when it reaches this size:
	// the live file shifts to TracePath.1 (older files to .2, .3, ...) and
	// a fresh file opens, always between complete JSON lines. 0 (the
	// default) never rotates.
	TraceRotateBytes int64
	// TraceRotateKeep is how many rotated trace files are retained beyond
	// the live one. 0 means 1.
	TraceRotateKeep int

	// Cloud configures the simulated object store when the DB creates its
	// own backends (OpenAt). Ignored when backends are supplied directly.
	CloudLatency storage.LatencyModel
	CloudCost    storage.CostModel

	// pcacheDir overrides where the persistent cache lives; set by OpenAt.
	pcacheDir string

	// Sharding internals, set by openSharded on the Options handed to each
	// child Open. sharedSeqs doubles as the "this DB is a keyspace shard"
	// marker (see DB.isShard); the rest plumb the facade-owned resources
	// that sharding keeps global instead of per-shard.
	shardID            int
	sharedSeqs         *seqSource
	sharedCache        *cache.Cache
	sharedPCache       pcache.BlockCache
	sharedTables       *tableCache
	sharedLat          *latencies
	sharedBreaker      *retry.Breaker
	breakerHooks       *breakerFanout
	sharedLocalBreaker *retry.Breaker
	localBreakerHooks  *breakerFanout
}

// DefaultOptions returns the PolicyMash configuration used throughout the
// examples and experiments.
func DefaultOptions() Options {
	return Options{
		Policy:                PolicyMash,
		LocalLevels:           2,
		MemtableBytes:         4 << 20,
		BlockBytes:            4 << 10,
		BloomBitsPerKey:       10,
		BlockCacheBytes:       8 << 20,
		MaxOpenTables:         512,
		PCacheBytes:           64 << 20,
		PCacheRegionBytes:     256 << 10,
		CompactionInheritance: true,
		L0CompactTrigger:      4,
		L0StallFiles:          12,
		LevelBaseBytes:        16 << 20,
		LevelMultiplier:       10,
		TargetFileBytes:       4 << 20,
		WALSync:               false,
		WALSegmentBytes:       4 << 20,
		ExtendedWAL:           true,
		RecoveryParallelism:   4,
		ReadProfileSampleRate: 64,
		CloudLatency:          storage.DefaultLatency(),
		CloudCost:             storage.DefaultCost(),
	}
}

// sanitize fills zero values with defaults.
func (o Options) sanitize() Options {
	d := DefaultOptions()
	switch {
	case o.LocalLevels == 0:
		o.LocalLevels = d.LocalLevels
	case o.LocalLevels < 0:
		o.LocalLevels = -1 // all levels in cloud (idempotent sentinel)
	}
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = d.MemtableBytes
	}
	if o.BlockBytes <= 0 {
		o.BlockBytes = d.BlockBytes
	}
	if o.BlockCacheBytes < 0 {
		o.BlockCacheBytes = 0
	}
	if o.MaxOpenTables <= 0 {
		o.MaxOpenTables = d.MaxOpenTables
	}
	if o.PCacheBytes <= 0 {
		o.PCacheBytes = d.PCacheBytes
	}
	if o.PCacheRegionBytes <= 0 {
		o.PCacheRegionBytes = d.PCacheRegionBytes
	}
	if o.CompactionPrefetchBlocks < 0 {
		o.CompactionPrefetchBlocks = 0
	}
	if o.UploadParallelism < 1 {
		o.UploadParallelism = 1
	}
	if o.IteratorReadaheadBlocks < 0 {
		o.IteratorReadaheadBlocks = 0
	}
	if o.L0CompactTrigger <= 0 {
		o.L0CompactTrigger = d.L0CompactTrigger
	}
	if o.L0StallFiles <= o.L0CompactTrigger {
		o.L0StallFiles = o.L0CompactTrigger * 3
	}
	if o.LevelBaseBytes <= 0 {
		o.LevelBaseBytes = d.LevelBaseBytes
	}
	if o.LevelMultiplier <= 1 {
		o.LevelMultiplier = d.LevelMultiplier
	}
	if o.TargetFileBytes <= 0 {
		o.TargetFileBytes = d.TargetFileBytes
	}
	if o.WALSegmentBytes <= 0 {
		o.WALSegmentBytes = d.WALSegmentBytes
	}
	if o.RecoveryParallelism <= 0 {
		o.RecoveryParallelism = 1
	}
	switch {
	case o.ReadProfileSampleRate == 0:
		o.ReadProfileSampleRate = d.ReadProfileSampleRate
	case o.ReadProfileSampleRate < 0:
		o.ReadProfileSampleRate = -1 // disabled (idempotent sentinel)
	}
	o.CloudRetry = o.CloudRetry.Sanitize()
	if o.PendingDrainInterval <= 0 {
		o.PendingDrainInterval = 200 * time.Millisecond
	}
	if o.VitalsInterval < 0 {
		o.VitalsInterval = 0
	}
	if o.FlightRecorder && o.VitalsInterval == 0 {
		// The detector evaluates on vitals ticks; a recorder without a
		// heartbeat would never detect anything.
		o.VitalsInterval = time.Second
	}
	if o.FlightHistory < 0 {
		o.FlightHistory = 0
	}
	if o.TraceRotateBytes < 0 {
		o.TraceRotateBytes = 0
	}
	if o.TraceRotateKeep < 0 {
		o.TraceRotateKeep = 0
	}
	if o.ScrubInterval < 0 {
		o.ScrubInterval = 0
	}
	if o.VitalsHistory < 0 {
		o.VitalsHistory = 0 // NewSampler substitutes vitals.DefaultHistory
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	return o
}

// tierForLevel returns where a new file at the given level belongs.
func (o Options) tierForLevel(level int) storage.Tier {
	switch o.Policy {
	case PolicyLocalOnly:
		return storage.TierLocal
	case PolicyCloudOnly, PolicyCloudLRU:
		return storage.TierCloud
	default: // PolicyMash
		if level < o.LocalLevels {
			return storage.TierLocal
		}
		return storage.TierCloud
	}
}

// levelTargetBytes returns the compaction size target for a level ≥ 1.
func (o Options) levelTargetBytes(level int) int64 {
	t := o.LevelBaseBytes
	for l := 1; l < level; l++ {
		t *= int64(o.LevelMultiplier)
	}
	return t
}

// usesPersistentCache reports whether the policy wants a disk cache.
func (o Options) usesPersistentCache() bool {
	return o.Policy == PolicyMash || o.Policy == PolicyCloudLRU
}
