package db

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"rocksmash/internal/batch"
	"rocksmash/internal/storage"
)

func shardTestOptions(p Policy, shards int) Options {
	o := testOptions(p)
	o.Shards = shards
	return o
}

func openShardTest(t *testing.T, p Policy, shards int) (*DB, string) {
	t.Helper()
	dir := t.TempDir()
	d, err := OpenAt(dir, shardTestOptions(p, shards))
	if err != nil {
		t.Fatal(err)
	}
	return d, dir
}

func TestShardedBasic(t *testing.T) {
	d, dir := openShardTest(t, PolicyMash, 4)

	const n = 2000
	for i := 0; i < n; i++ {
		mustPut(t, d, fmt.Sprintf("key%06d", i), fmt.Sprintf("val%06d", i))
	}
	for i := 0; i < n; i += 3 {
		if err := d.Delete([]byte(fmt.Sprintf("key%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.CompactAll(); err != nil {
		t.Fatal(err)
	}
	verify := func(d *DB, label string) {
		t.Helper()
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("key%06d", i)
			v, err := d.Get([]byte(k))
			if i%3 == 0 {
				if err != ErrNotFound {
					t.Fatalf("%s: deleted %s: got %v", label, k, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s: %s: %v", label, k, err)
			}
			if want := fmt.Sprintf("val%06d", i); string(v) != want {
				t.Fatalf("%s: %s = %q want %q", label, k, v, want)
			}
		}
	}
	verify(d, "live")

	// Per-shard attribution: every shard must have seen a fair slice of the
	// hashed keyspace.
	m := d.Metrics()
	if len(m.Shards) != 4 {
		t.Fatalf("Metrics().Shards has %d entries, want 4", len(m.Shards))
	}
	var writes int64
	for _, s := range m.Shards {
		writes += s.Writes
		if s.Writes < int64(n)/16 {
			t.Fatalf("shard %d underloaded: %d writes of %d", s.Shard, s.Writes, n)
		}
	}
	if writes != m.Writes {
		t.Fatalf("shard writes sum %d != aggregate %d", writes, m.Writes)
	}
	if !strings.Contains(d.DumpStats(), "** Shards **") {
		t.Fatal("DumpStats missing the Shards section")
	}

	// Clean reopen: marker verified, all shards recover.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenAt(dir, shardTestOptions(PolicyMash, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	verify(d2, "reopened")
}

// TestShardedMatchesUnsharded drives the same operation trace into a
// 1-shard and a 4-shard store and requires byte-identical contents: full
// forward scan, full reverse scan, and point reads all agree.
func TestShardedMatchesUnsharded(t *testing.T) {
	one, _ := openShardTest(t, PolicyMash, 1)
	defer one.Close()
	four, _ := openShardTest(t, PolicyMash, 4)
	defer four.Close()

	rng := rand.New(rand.NewSource(42))
	apply := func(d *DB) {
		t.Helper()
		r := rand.New(rand.NewSource(77))
		for step := 0; step < 4000; step++ {
			k := fmt.Sprintf("key%05d", r.Intn(800))
			switch r.Intn(10) {
			case 0:
				if err := d.Delete([]byte(k)); err != nil {
					t.Fatal(err)
				}
			case 1:
				b := batch.New()
				for j := 0; j < 1+r.Intn(5); j++ {
					b.Set([]byte(fmt.Sprintf("key%05d", r.Intn(800))), []byte(fmt.Sprintf("b%d-%d", step, j)))
				}
				if err := d.Write(b); err != nil {
					t.Fatal(err)
				}
			default:
				if err := d.Put([]byte(k), []byte(fmt.Sprintf("v%d", step))); err != nil {
					t.Fatal(err)
				}
			}
			if step%700 == 650 {
				if err := d.Flush(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := d.CompactAll(); err != nil {
			t.Fatal(err)
		}
	}
	apply(one)
	apply(four)

	dump := func(d *DB, reverse bool) []byte {
		t.Helper()
		it, err := d.NewIterator()
		if err != nil {
			t.Fatal(err)
		}
		defer it.Close()
		var buf bytes.Buffer
		if reverse {
			for it.Last(); it.Valid(); it.Prev() {
				fmt.Fprintf(&buf, "%s=%s\n", it.Key(), it.Value())
			}
		} else {
			for it.First(); it.Valid(); it.Next() {
				fmt.Fprintf(&buf, "%s=%s\n", it.Key(), it.Value())
			}
		}
		if it.Err() != nil {
			t.Fatal(it.Err())
		}
		return buf.Bytes()
	}
	if !bytes.Equal(dump(one, false), dump(four, false)) {
		t.Fatal("forward scans differ between 1-shard and 4-shard stores")
	}
	if !bytes.Equal(dump(one, true), dump(four, true)) {
		t.Fatal("reverse scans differ between 1-shard and 4-shard stores")
	}

	for trial := 0; trial < 300; trial++ {
		k := []byte(fmt.Sprintf("key%05d", rng.Intn(900)))
		v1, e1 := one.Get(k)
		v4, e4 := four.Get(k)
		if (e1 == nil) != (e4 == nil) || !bytes.Equal(v1, v4) {
			t.Fatalf("Get(%s): unsharded (%q,%v) vs sharded (%q,%v)", k, v1, e1, v4, e4)
		}
	}
}

// TestShardedIteratorDirectionSwitch exercises the facade merge's
// direction-switch repositioning against a sorted model.
func TestShardedIteratorDirectionSwitch(t *testing.T) {
	d, _ := openShardTest(t, PolicyLocalOnly, 4)
	defer d.Close()
	var sorted []string
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key%04d", i)
		mustPut(t, d, k, "v")
		sorted = append(sorted, k)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	it, err := d.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	rng := rand.New(rand.NewSource(9))
	pos := -1 // index into sorted, -1 = unpositioned
	it.First()
	pos = 0
	for step := 0; step < 2000; step++ {
		switch rng.Intn(4) {
		case 0:
			it.Next()
			pos++
		case 1:
			it.Prev()
			pos--
		case 2:
			i := rng.Intn(len(sorted))
			it.Seek([]byte(sorted[i]))
			pos = i
		default:
			i := rng.Intn(len(sorted))
			it.SeekForPrev([]byte(sorted[i]))
			pos = i
		}
		if pos < 0 || pos >= len(sorted) {
			if it.Valid() {
				t.Fatalf("step %d: expected exhausted, at %q", step, it.Key())
			}
			// Re-establish a known position: a real iterator stays
			// exhausted until re-seeked, same as the single-LSM one.
			i := rng.Intn(len(sorted))
			it.Seek([]byte(sorted[i]))
			pos = i
		}
		if !it.Valid() || string(it.Key()) != sorted[pos] {
			t.Fatalf("step %d: at %q (valid=%v), want %q", step, it.Key(), it.Valid(), sorted[pos])
		}
	}
}

// TestShardedSnapshotConsistency pins a snapshot while writes continue on
// every shard: the snapshot must keep showing the captured state, because
// the shared sequence source gives all shards one visibility watermark.
func TestShardedSnapshotConsistency(t *testing.T) {
	d, _ := openShardTest(t, PolicyMash, 4)
	defer d.Close()

	model := map[string]string{}
	for i := 0; i < 600; i++ {
		k := fmt.Sprintf("key%04d", i)
		v := fmt.Sprintf("gen0-%d", i)
		mustPut(t, d, k, v)
		model[k] = v
	}
	snap := d.GetSnapshot()
	defer snap.Release()

	// Overwrite everything and churn the physical layout.
	for i := 0; i < 600; i++ {
		mustPut(t, d, fmt.Sprintf("key%04d", i), fmt.Sprintf("gen1-%d", i))
	}
	if err := d.CompactAll(); err != nil {
		t.Fatal(err)
	}

	for k, want := range model {
		got, err := snap.Get([]byte(k))
		if err != nil {
			t.Fatalf("snapshot Get(%s): %v", k, err)
		}
		if string(got) != want {
			t.Fatalf("snapshot Get(%s) = %q want %q", k, got, want)
		}
	}
	it, err := snap.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	seen := 0
	for it.First(); it.Valid(); it.Next() {
		if model[string(it.Key())] != string(it.Value()) {
			t.Fatalf("snapshot iterator: %s = %q want %q", it.Key(), it.Value(), model[string(it.Key())])
		}
		seen++
	}
	if seen != len(model) {
		t.Fatalf("snapshot iterator saw %d keys, want %d", seen, len(model))
	}
}

// TestShardedCrashPointRecovery is the crash-point sweep over a 4-shard
// store: storage dies at a random operation index, the store crashes, and
// every acknowledged write must survive the (concurrent, per-shard) WAL
// replay at reopen.
func TestShardedCrashPointRecovery(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 6
	}
	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%03d", seed), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			rng := rand.New(rand.NewSource(int64(seed)*6151 + 11))
			crashAt := int64(10 + rng.Intn(500))

			o := crashOptions(dir)
			o.Shards = 4
			local, err := storage.NewLocal(filepath.Join(dir, "local"))
			if err != nil {
				t.Fatal(err)
			}
			cloud, err := storage.NewCloud(filepath.Join(dir, "cloud"), o.CloudLatency, o.CloudCost)
			if err != nil {
				t.Fatal(err)
			}
			fl := storage.NewFaulty(local, storage.FaultConfig{})
			fc := storage.NewFaulty(cloud, storage.FaultConfig{})
			var ops atomic.Int64
			dead := func(op, name string) error {
				if ops.Add(1) > crashAt {
					return errors.New("crash point reached")
				}
				return nil
			}
			fl.SetHook(dead)
			fc.SetHook(dead)

			acked := map[string]string{}
			d, err := Open(o, fl, fc)
			if err == nil {
				for i := 0; i < 400; i++ {
					k := fmt.Sprintf("k%04d", i)
					v := fmt.Sprintf("value-%04d", i)
					if perr := d.Put([]byte(k), []byte(v)); perr != nil {
						break
					}
					acked[k] = v
					if i%41 == 40 {
						if ferr := d.Flush(); ferr != nil {
							break
						}
					}
				}
				d.Crash()
			}

			local2, err := storage.NewLocal(filepath.Join(dir, "local"))
			if err != nil {
				t.Fatal(err)
			}
			cloud2, err := storage.NewCloud(filepath.Join(dir, "cloud"), o.CloudLatency, o.CloudCost)
			if err != nil {
				t.Fatal(err)
			}
			o2 := crashOptions(dir)
			o2.Shards = 4
			d2, err := Open(o2, local2, cloud2)
			if err != nil {
				t.Fatalf("crashAt=%d acked=%d: reopen after crash: %v", crashAt, len(acked), err)
			}
			defer d2.Close()
			for k, v := range acked {
				got, gerr := d2.Get([]byte(k))
				if gerr != nil {
					t.Fatalf("crashAt=%d: acked key %s lost: %v", crashAt, k, gerr)
				}
				if string(got) != v {
					t.Fatalf("crashAt=%d: acked key %s corrupted", crashAt, k)
				}
			}
		})
	}
}

func TestShardMarkerMismatch(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenAt(dir, shardTestOptions(PolicyLocalOnly, 2))
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, d, "a", "1")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenAt(dir, shardTestOptions(PolicyLocalOnly, 3)); err == nil {
		t.Fatal("reopening a 2-shard store with Shards=3 must fail")
	}
	if _, err := OpenAt(dir, shardTestOptions(PolicyLocalOnly, 1)); err == nil {
		t.Fatal("reopening a 2-shard store unsharded must fail")
	}
	d2, err := OpenAt(dir, shardTestOptions(PolicyLocalOnly, 2))
	if err != nil {
		t.Fatalf("reopening with the recorded shard count: %v", err)
	}
	defer d2.Close()
	if v, err := d2.Get([]byte("a")); err != nil || string(v) != "1" {
		t.Fatalf("Get(a) = %q, %v", v, err)
	}
}

func TestShardingRejectsExistingUnshardedStore(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenAt(dir, testOptions(PolicyLocalOnly))
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, d, "a", "1")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenAt(dir, shardTestOptions(PolicyLocalOnly, 4)); err == nil {
		t.Fatal("opening an existing unsharded store with Shards=4 must fail")
	}
	// The original layout still opens.
	d2, err := OpenAt(dir, testOptions(PolicyLocalOnly))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if v, err := d2.Get([]byte("a")); err != nil || string(v) != "1" {
		t.Fatalf("Get(a) = %q, %v", v, err)
	}
}

func TestShardedCrossShardBatch(t *testing.T) {
	d, _ := openShardTest(t, PolicyLocalOnly, 4)
	defer d.Close()

	b := batch.New()
	for i := 0; i < 200; i++ {
		b.Set([]byte(fmt.Sprintf("batch%05d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := d.Write(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("batch%05d", i)
		v, err := d.Get([]byte(k))
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if want := fmt.Sprintf("v%d", i); string(v) != want {
			t.Fatalf("%s = %q want %q", k, v, want)
		}
	}

	// Mixed sets and cross-shard deletes in one batch.
	b2 := batch.New()
	for i := 0; i < 200; i += 2 {
		b2.Delete([]byte(fmt.Sprintf("batch%05d", i)))
	}
	if err := d.Write(b2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		_, err := d.Get([]byte(fmt.Sprintf("batch%05d", i)))
		if i%2 == 0 && err != ErrNotFound {
			t.Fatalf("deleted batch%05d still readable (%v)", i, err)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("batch%05d: %v", i, err)
		}
	}
}

func TestShardedBackupRestore(t *testing.T) {
	d, _ := openShardTest(t, PolicyMash, 3)
	defer d.Close()
	for i := 0; i < 800; i++ {
		mustPut(t, d, fmt.Sprintf("key%05d", i), fmt.Sprintf("val%05d", i))
	}
	if err := d.CompactAll(); err != nil {
		t.Fatal(err)
	}
	bdir := t.TempDir()
	if err := d.Backup(bdir); err != nil {
		t.Fatal(err)
	}

	o := shardTestOptions(PolicyMash, 3)
	o.pcacheDir = filepath.Join(bdir, "pcache")
	local, err := storage.NewLocal(filepath.Join(bdir, "local"))
	if err != nil {
		t.Fatal(err)
	}
	cloud, err := storage.NewCloud(filepath.Join(bdir, "cloud"), o.CloudLatency, o.CloudCost)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(o, local, cloud)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 800; i++ {
		k := fmt.Sprintf("key%05d", i)
		v, err := r.Get([]byte(k))
		if err != nil {
			t.Fatalf("restored %s: %v", k, err)
		}
		if want := fmt.Sprintf("val%05d", i); string(v) != want {
			t.Fatalf("restored %s = %q want %q", k, v, want)
		}
	}
}
