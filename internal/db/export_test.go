package db

// CrashForTest is the test-suite alias of Crash.
func (d *DB) CrashForTest() { d.Crash() }

// DebugLevels exposes the per-level file counts.
func (d *DB) DebugLevels() [7]int { return d.debugLevels() }
