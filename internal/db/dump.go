package db

import (
	"fmt"
	"strings"
	"time"

	"rocksmash/internal/readprof"
	"rocksmash/internal/storage"
)

// dumpWindow is the counter baseline captured by the previous DumpStats
// call, so each report can show interval (since-last-dump) deltas next to
// the cumulative totals — RocksDB's "cumulative / interval" convention.
type dumpWindow struct {
	at              time.Time
	reads           int64
	writes          int64
	bytesWritten    int64
	stalls          int64
	flushes         int64
	flushBytes      int64
	compactions     int64
	compactBytesIn  int64
	compactBytesOut int64
	uploadRetries   int64
	readRetries     int64
	localIO         storage.Snapshot
	cloudIO         storage.Snapshot
}

func windowOf(m Metrics, at time.Time) dumpWindow {
	return dumpWindow{
		at:              at,
		reads:           m.Reads,
		writes:          m.Writes,
		bytesWritten:    m.BytesWritten,
		stalls:          m.WriteStalls,
		flushes:         m.Flushes,
		flushBytes:      m.FlushBytes,
		compactions:     m.Compactions,
		compactBytesIn:  m.CompactBytesIn,
		compactBytesOut: m.CompactBytesOut,
		uploadRetries:   m.UploadRetries,
		readRetries:     m.ReadRetries,
		localIO:         m.LocalIO,
		cloudIO:         m.CloudIO,
	}
}

// hasLevelCompactions reports whether any level has compacted yet.
func hasLevelCompactions(lws []LevelWriteAmp) bool {
	for _, lw := range lws {
		if lw.Count > 0 {
			return true
		}
	}
	return false
}

// humanBytes renders a byte count with a binary-unit suffix.
func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// DumpStats renders a multi-line, human-readable statistics report in the
// spirit of RocksDB's GetProperty("rocksdb.stats"): cumulative counters,
// interval deltas since the previous DumpStats call, the level shape, the
// engine latency distributions, cache state and cloud I/O with its bill.
func (d *DB) DumpStats() string {
	m := d.Metrics()
	now := time.Now()

	d.dumpMu.Lock()
	prev := d.lastDump
	d.lastDump = windowOf(m, now)
	d.dumpMu.Unlock()
	if prev.at.IsZero() {
		// First dump: the interval spans the DB's whole lifetime.
		prev.at = d.openedAt
	}
	interval := now.Sub(prev.at)
	uptime := now.Sub(d.openedAt)

	var b strings.Builder
	fmt.Fprintf(&b, "** DB Stats (policy=%s, uptime=%s, interval=%s) **\n",
		m.Policy, uptime.Round(time.Millisecond), interval.Round(time.Millisecond))
	fmt.Fprintf(&b, "Cumulative writes: %d ops, %s user data, stalls: %d\n",
		m.Writes, humanBytes(m.BytesWritten), m.WriteStalls)
	fmt.Fprintf(&b, "Cumulative reads:  %d ops\n", m.Reads)
	fmt.Fprintf(&b, "Interval writes:   %d ops, %s user data, stalls: %d\n",
		m.Writes-prev.writes, humanBytes(m.BytesWritten-prev.bytesWritten), m.WriteStalls-prev.stalls)
	fmt.Fprintf(&b, "Interval reads:    %d ops\n", m.Reads-prev.reads)
	if m.CommitGroups > 0 {
		fmt.Fprintf(&b, "Commit groups: %d, %.2f batches/group, %d WAL syncs amortized\n",
			m.CommitGroups, float64(m.CommitGroupBatches)/float64(m.CommitGroups),
			m.WALSyncsAmortized)
	}

	if len(m.Shards) > 0 {
		b.WriteString("\n** Shards **\n")
		fmt.Fprintf(&b, "%-6s %10s %10s %8s %8s %8s %8s %12s %10s %10s\n",
			"shard", "writes", "reads", "flushes", "compact", "stalls", "files", "bytes", "pc-hit", "pc-miss")
		for _, s := range m.Shards {
			fmt.Fprintf(&b, "%-6d %10d %10d %8d %8d %8d %8d %12s %10d %10d\n",
				s.Shard, s.Writes, s.Reads, s.Flushes, s.Compactions, s.WriteStalls,
				s.Files, humanBytes(s.Bytes), s.PCacheHits, s.PCacheMisses)
		}
	}

	b.WriteString("\n** Level Shape **\n")
	fmt.Fprintf(&b, "%-6s %8s %12s %8s\n", "level", "files", "bytes", "tier")
	for l := range m.LevelFiles {
		if m.LevelFiles[l] == 0 {
			continue
		}
		fmt.Fprintf(&b, "L%-5d %8d %12s %8s\n",
			l, m.LevelFiles[l], humanBytes(int64(m.LevelBytes[l])), d.opts.tierForLevel(l))
	}
	fmt.Fprintf(&b, "Placement: local %s, cloud %s, pinned metadata %s\n",
		humanBytes(m.LocalBytes), humanBytes(m.CloudBytes), humanBytes(m.MetaBytes))

	b.WriteString("\n** Flush & Compaction **\n")
	fmt.Fprintf(&b, "Flushes:     %d cum (%d interval), %s written\n",
		m.Flushes, m.Flushes-prev.flushes, humanBytes(m.FlushBytes))
	fmt.Fprintf(&b, "Compactions: %d cum (%d interval), in %s, out %s, dropped keys %d\n",
		m.Compactions, m.Compactions-prev.compactions,
		humanBytes(m.CompactBytesIn), humanBytes(m.CompactBytesOut), m.CompactDroppedKeys)
	fmt.Fprintf(&b, "Upload retries: %d cum (%d interval)\n",
		m.UploadRetries, m.UploadRetries-prev.uploadRetries)
	fmt.Fprintf(&b, "Pipeline: prefetch %d spans/%d blocks, readahead %d spans/%d blocks\n",
		m.PrefetchSpans, m.PrefetchBlocks, m.ReadaheadSpans, m.ReadaheadBlocks)
	fmt.Fprintf(&b, "Write amp: %.2fx cumulative (flush %s + compact-out %s / user %s)\n",
		m.WriteAmp(), humanBytes(m.FlushBytes), humanBytes(m.CompactBytesOut),
		humanBytes(m.BytesWritten))
	fmt.Fprintf(&b, "Compaction debt: %s, space amp %.2fx\n",
		humanBytes(m.CompactionDebt), m.SpaceAmp)
	if hasLevelCompactions(m.LevelWriteAmp) {
		fmt.Fprintf(&b, "%-8s %8s %12s %12s %12s %8s\n",
			"move", "count", "in-src", "in-tgt", "out", "w-amp")
		for _, lw := range m.LevelWriteAmp {
			if lw.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, "L%d->L%-3d %8d %12s %12s %12s %7.2fx\n",
				lw.Level, lw.Target, lw.Count,
				humanBytes(lw.BytesInSource), humanBytes(lw.BytesInTarget),
				humanBytes(lw.BytesOut), lw.WriteAmp())
		}
	}

	if m.BreakerState != "" {
		b.WriteString("\n** Robustness **\n")
		fmt.Fprintf(&b, "Cloud breaker: %s, trips %d, half-opens %d, degraded %s\n",
			m.BreakerState, m.BreakerTrips, m.BreakerHalfOpens, m.DegradedDur.Round(time.Millisecond))
		fmt.Fprintf(&b, "Read retries: %d cum (%d interval)\n",
			m.ReadRetries, m.ReadRetries-prev.readRetries)
		fmt.Fprintf(&b, "Degraded landings: %d tables, drained %d, pending %d (%s)\n",
			m.DegradedTables, m.DrainedTables, m.PendingTables, humanBytes(m.PendingBytes))
		if m.CompactionsDeferred > 0 {
			fmt.Fprintf(&b, "Compactions deferred by outages: %d\n", m.CompactionsDeferred)
		}
		if m.DeferredDeletes > 0 {
			fmt.Fprintf(&b, "Deferred deletes: %d queued for retry\n", m.DeferredDeletes)
		}
	}
	if m.LocalBreakerState != "" {
		if m.BreakerState == "" {
			b.WriteString("\n** Robustness **\n")
		}
		fmt.Fprintf(&b, "Local breaker: %s, trips %d, half-opens %d, degraded %s\n",
			m.LocalBreakerState, m.LocalBreakerTrips, m.LocalBreakerHalfOpens,
			m.LocalDegradedDur.Round(time.Millisecond))
		fmt.Fprintf(&b, "Local-degraded landings: %d tables, drained back %d, misplaced %d\n",
			m.LocalDegradedTables, m.LocalDrainedBack, m.MisplacedTables)
		fmt.Fprintf(&b, "Corruption: detected %d, repaired %d, unrepaired %d, quarantined %d (scrub passes %d)\n",
			m.CorruptionsDetected, m.CorruptionsRepaired, m.CorruptionsUnrepaired,
			m.QuarantinedTables, m.ScrubPasses)
		if m.MirroredTables > 0 {
			fmt.Fprintf(&b, "Mirrored local tables: %d\n", m.MirroredTables)
		}
		if m.PCacheCorruptReads > 0 {
			fmt.Fprintf(&b, "PCache corrupt reads (self-healed): %d\n", m.PCacheCorruptReads)
		}
		if m.WALSpills > 0 || m.WALRestored > 0 {
			fmt.Fprintf(&b, "WAL segments: spilled %d to backup, restored %d\n", m.WALSpills, m.WALRestored)
		}
	}

	if fs := d.flight; fs != nil {
		b.WriteString("\n** Flight Recorder **\n")
		fmt.Fprintf(&b, "Incidents: %d triggered, %d suppressed; bundles: %d written, %d errors\n",
			m.IncidentsTriggered, m.IncidentsSuppressed, m.BundlesWritten, m.BundleErrors)
		if len(m.ActiveIncidents) > 0 {
			fmt.Fprintf(&b, "Active rules: %s\n", strings.Join(m.ActiveIncidents, ", "))
		}
		ring := fs.rec.Ring()
		fmt.Fprintf(&b, "Event ring: %d recorded, %d overwritten (cap %d)\n",
			ring.Recorded(), ring.Dropped(), ring.Cap())
	}

	b.WriteString("\n** Latency (cumulative) **\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %10s %10s %10s\n",
		"op", "count", "mean", "p50", "p90", "p99", "max")
	for _, row := range []struct {
		name string
		s    LatencySummary
	}{
		{"get", m.GetLat},
		{"put", m.PutLat},
		{"flush", m.FlushLat},
		{"compact", m.CompactLat},
		{"local.get", m.LocalGetLat},
		{"local.put", m.LocalPutLat},
		{"cloud.get", m.CloudGetLat},
		{"cloud.put", m.CloudPutLat},
	} {
		fmt.Fprintf(&b, "%-10s %10d %10s %10s %10s %10s %10s\n",
			row.name, row.s.Count, row.s.Mean, row.s.P50, row.s.P90, row.s.P99, row.s.Max)
	}

	b.WriteString("\n** Caches **\n")
	fmt.Fprintf(&b, "Block cache: hit %.3f\n", m.BlockHit)
	fmt.Fprintf(&b, "PCache:      hit %.3f, used %s, metadata %s\n",
		m.PCacheHit, humanBytes(m.PCacheUsed), humanBytes(m.PCacheMeta))

	if ra := m.ReadAmp; ra.ProfiledGets > 0 {
		b.WriteString("\n** Read Path **\n")
		fmt.Fprintf(&b, "Profiled gets: %d (%d timed), served mem %d, not found %d\n",
			ra.ProfiledGets, ra.TimedGets, ra.MemServes, ra.NotFound)
		fmt.Fprintf(&b, "Read amp: %.2f tables/get, %.2f blocks/get, %s/get\n",
			ra.TablesPerGet(), ra.BlocksPerGet(), humanBytes(int64(ra.BytesPerGet())))
		if ra.BloomChecked > 0 {
			fmt.Fprintf(&b, "Bloom: %d checked, %d negative (%.3f true-negative rate)\n",
				ra.BloomChecked, ra.BloomNegative, ra.BloomTrueNegativeRate())
		}
		fmt.Fprintf(&b, "%-6s %10s %10s %14s %14s\n", "level", "serves", "probes", "pcache-hit", "pcache-miss")
		for l := 0; l < len(ra.LevelServes); l++ {
			if ra.LevelServes[l] == 0 && ra.LevelProbes[l] == 0 &&
				ra.PCacheLevelHits[l] == 0 && ra.PCacheLevelMisses[l] == 0 {
				continue
			}
			fmt.Fprintf(&b, "L%-5d %10d %10d %14d %14d\n",
				l, ra.LevelServes[l], ra.LevelProbes[l], ra.PCacheLevelHits[l], ra.PCacheLevelMisses[l])
		}
		if uh, um := ra.PCacheLevelHits[len(ra.PCacheLevelHits)-1],
			ra.PCacheLevelMisses[len(ra.PCacheLevelMisses)-1]; uh+um > 0 {
			fmt.Fprintf(&b, "%-6s %10s %10s %14d %14d\n", "L?", "-", "-", uh, um)
		}
		fmt.Fprintf(&b, "%-12s %10s %12s %12s\n", "tier", "blocks", "bytes", "time")
		for t := readprof.Tier(0); t < readprof.NumTiers; t++ {
			if ra.Blocks[t] == 0 {
				continue
			}
			fmt.Fprintf(&b, "%-12s %10d %12s %12s\n",
				t, ra.Blocks[t], humanBytes(ra.Bytes[t]),
				time.Duration(ra.FetchNanos[t]).Round(time.Microsecond))
		}
		if ra.IterSeeks > 0 {
			fmt.Fprintf(&b, "Iterators: %d seeks", ra.IterSeeks)
			for t := readprof.Tier(0); t < readprof.NumTiers; t++ {
				if ra.IterBlocks[t] > 0 {
					fmt.Fprintf(&b, ", %s %d blocks (%s)", t, ra.IterBlocks[t], humanBytes(ra.IterBytes[t]))
				}
			}
			b.WriteString("\n")
		}
	}

	if m.ScanViewHits+m.ScanViewMisses+m.ViewBuilds > 0 {
		b.WriteString("\n** Range Scans **\n")
		fmt.Fprintf(&b, "Sorted views: %d level hits, %d misses, %d builds (%s encoded)\n",
			m.ScanViewHits, m.ScanViewMisses, m.ViewBuilds, humanBytes(m.ViewBuildBytes))
		if m.IterKeys > 0 {
			var iterBlocks int64
			for t := 0; t < readprof.NumTiers; t++ {
				iterBlocks += m.ReadAmp.IterBlocks[t]
			}
			fmt.Fprintf(&b, "Scanned keys: %d, %.4f blocks/scanned-key\n",
				m.IterKeys, float64(iterBlocks)/float64(m.IterKeys))
		}
	}

	b.WriteString("\n** Storage I/O **\n")
	li := m.LocalIO.Sub(prev.localIO)
	ci := m.CloudIO.Sub(prev.cloudIO)
	fmt.Fprintf(&b, "Local cum:      %d GET (%s), %d PUT (%s)\n",
		m.LocalIO.GetOps, humanBytes(m.LocalIO.BytesRead), m.LocalIO.PutOps, humanBytes(m.LocalIO.BytesWrite))
	fmt.Fprintf(&b, "Local interval: %d GET (%s), %d PUT (%s)\n",
		li.GetOps, humanBytes(li.BytesRead), li.PutOps, humanBytes(li.BytesWrite))
	fmt.Fprintf(&b, "Cloud cum:      %d GET (%s, %.1f B/GET), %d PUT (%s)\n",
		m.CloudIO.GetOps, humanBytes(m.CloudIO.BytesRead), m.CloudIO.BytesPerGet(),
		m.CloudIO.PutOps, humanBytes(m.CloudIO.BytesWrite))
	fmt.Fprintf(&b, "Cloud interval: %d GET (%s), %d PUT (%s)\n",
		ci.GetOps, humanBytes(ci.BytesRead), ci.PutOps, humanBytes(ci.BytesWrite))
	if m.CloudCost.TotalMonthly > 0 {
		fmt.Fprintf(&b, "Cloud bill: storage $%.4f/mo + requests $%.4f + egress $%.4f = $%.4f\n",
			m.CloudCost.StorageCost, m.CloudCost.RequestCost, m.CloudCost.EgressCost,
			m.CloudCost.TotalMonthly)
	}
	return b.String()
}
