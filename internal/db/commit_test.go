package db

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"rocksmash/internal/batch"
	"rocksmash/internal/event"
)

// TestCommitPipelineVisibilitySoak runs concurrent writers and readers
// against the pipelined write path. Writer w commits batch j atomically
// containing data keys plus a "latest-w" marker set to j; a reader that
// observes latest-w == j at snapshot seq must find every key of every batch
// j' <= j at that snapshot. A violation means the pending ring published a
// sequence before an earlier one was applied (a visibility gap). Run under
// -race this doubles as the concurrency soak for the skiplist and arena.
func TestCommitPipelineVisibilitySoak(t *testing.T) {
	const (
		writers = 8
		batches = 60
		perB    = 5
	)
	d, _ := openTest(t, PolicyLocalOnly)
	defer d.Close()

	var writersWG, readersWG sync.WaitGroup
	stop := make(chan struct{})
	var violations atomic.Int32

	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for j := 1; j <= batches; j++ {
				b := batch.New()
				for k := 0; k < perB; k++ {
					b.Set([]byte(fmt.Sprintf("w%d-b%04d-k%d", w, j, k)), []byte(fmt.Sprintf("v%d", j)))
				}
				b.Set([]byte(fmt.Sprintf("latest-w%d", w)), []byte(fmt.Sprintf("%04d", j)))
				if err := d.Write(b); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	// Readers: snapshot, read a writer's marker, then verify a random
	// earlier batch of that writer is fully visible at the same snapshot.
	for r := 0; r < 4; r++ {
		readersWG.Add(1)
		go func(r int) {
			defer readersWG.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := d.GetSnapshot()
				w := rng.Intn(writers)
				val, err := s.Get([]byte(fmt.Sprintf("latest-w%d", w)))
				if err == ErrNotFound {
					s.Release()
					continue
				}
				if err != nil {
					t.Errorf("reader: %v", err)
					s.Release()
					return
				}
				var j int
				fmt.Sscanf(string(val), "%d", &j)
				probe := 1 + rng.Intn(j)
				for k := 0; k < perB; k++ {
					key := fmt.Sprintf("w%d-b%04d-k%d", w, probe, k)
					if _, err := s.Get([]byte(key)); err != nil {
						violations.Add(1)
						t.Errorf("visibility gap: latest-w%d=%d at seq %d but %s missing: %v",
							w, j, s.Seq(), key, err)
						s.Release()
						return
					}
				}
				s.Release()
			}
		}(r)
	}

	// Readers run until every writer is done, then drain.
	writersWG.Wait()
	close(stop)
	readersWG.Wait()

	if violations.Load() > 0 {
		t.Fatalf("%d visibility violations", violations.Load())
	}
	// All sequences were allocated and published: no holes on success.
	want := uint64(writers * batches * (perB + 1))
	if got := d.LastSequence(); got != want {
		t.Fatalf("lastSeq = %d, want %d", got, want)
	}
}

// TestCommitPipelineCrashEquivalence drives the same deterministic workload
// through the pipelined and serial write paths, crashes both mid-stream
// without a clean close, reopens, and requires identical recovered state —
// the ISSUE's serial-vs-pipeline recovery acceptance check.
func TestCommitPipelineCrashEquivalence(t *testing.T) {
	run := func(disable bool) []string {
		dir := t.TempDir()
		o := testOptions(PolicyLocalOnly)
		o.DisableCommitPipeline = disable
		d, err := OpenAt(dir, o)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 800; i++ {
			k := fmt.Sprintf("k%05d", rng.Intn(500))
			if i%11 == 10 {
				if err := d.Delete([]byte(k)); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if err := d.Put([]byte(k), []byte(pipelineValue(i))); err != nil {
				t.Fatal(err)
			}
			if i%151 == 150 {
				if err := d.Flush(); err != nil {
					t.Fatal(err)
				}
			}
		}
		d.Crash()

		d2, err := OpenAt(dir, o)
		if err != nil {
			t.Fatal(err)
		}
		defer d2.Close()
		return scanAll(t, d2)
	}

	pipelined := run(false)
	serial := run(true)
	if len(pipelined) != len(serial) {
		t.Fatalf("recovered key counts differ: pipeline %d, serial %d", len(pipelined), len(serial))
	}
	for i := range pipelined {
		if pipelined[i] != serial[i] {
			t.Fatalf("recovered state diverges at %d: pipeline %q, serial %q", i, pipelined[i], serial[i])
		}
	}
}

// TestCommitPipelineDisabledServesWrites exercises the serial fallback path
// end to end: batched writes, flush, reads.
func TestCommitPipelineDisabledServesWrites(t *testing.T) {
	dir := t.TempDir()
	o := testOptions(PolicyLocalOnly)
	o.DisableCommitPipeline = true
	d, err := OpenAt(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 300; i++ {
		mustPut(t, d, fmt.Sprintf("k%04d", i), pipelineValue(i))
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		mustGet(t, d, fmt.Sprintf("k%04d", i), pipelineValue(i))
	}
	if n := d.EngineStats().CommitGroups.Load(); n != 0 {
		t.Fatalf("serial path counted %d commit groups, want 0", n)
	}
}

// TestCommitGroupStatsAndEvents checks that concurrent committed batches
// produce CommitGroup events and counters that reconcile: batches across
// groups equals total Write calls, and with WALSync the amortized-fsync
// counter equals batches minus groups.
func TestCommitGroupStatsAndEvents(t *testing.T) {
	dir := t.TempDir()
	rec := &event.Recorder{}
	o := testOptions(PolicyLocalOnly)
	o.WALSync = true
	o.EventListener = rec
	d, err := OpenAt(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const writers, puts = 6, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < puts; i++ {
				if err := d.Put([]byte(fmt.Sprintf("w%d-%04d", w, i)), []byte("v")); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	groups := d.EngineStats().CommitGroups.Load()
	batches := d.EngineStats().CommitGroupBatches.Load()
	amortized := d.EngineStats().WALSyncsAmortized.Load()
	if groups == 0 {
		t.Fatal("no commit groups counted")
	}
	if batches != writers*puts {
		t.Fatalf("CommitGroupBatches = %d, want %d", batches, writers*puts)
	}
	if amortized != batches-groups {
		t.Fatalf("WALSyncsAmortized = %d, want batches-groups = %d", amortized, batches-groups)
	}
	if got := rec.Count(event.TCommitGroup); int64(got) != groups {
		t.Fatalf("recorded %d CommitGroup events, stats counted %d groups", got, groups)
	}
	ev, ok := rec.First(event.TCommitGroup)
	if !ok {
		t.Fatal("no CommitGroup event captured")
	}
	cg := ev.Payload.(event.CommitGroup)
	if cg.Batches < 1 || cg.Ops < 1 || !cg.Synced {
		t.Fatalf("malformed CommitGroup payload: %+v", cg)
	}
	m := d.Metrics()
	if m.CommitGroups != groups || m.CommitGroupBatches != batches || m.WALSyncsAmortized != amortized {
		t.Fatalf("Metrics disagrees with Stats: %+v", m)
	}
}

// TestCommitPipelineFlushDuringConcurrentWrites interleaves explicit flushes
// with parallel writers: every acked write must be readable afterwards even
// though memtables rotate mid-group.
func TestCommitPipelineFlushDuringConcurrentWrites(t *testing.T) {
	d, _ := openTest(t, PolicyLocalOnly)
	defer d.Close()

	const writers, puts = 4, 120
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < puts; i++ {
				if err := d.Put([]byte(fmt.Sprintf("w%d-%04d", w, i)), []byte(pipelineValue(i))); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if w == 0 && i%25 == 24 {
					if err := d.Flush(); err != nil {
						t.Errorf("flush: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < puts; i++ {
			mustGet(t, d, fmt.Sprintf("w%d-%04d", w, i), pipelineValue(i))
		}
	}
}
