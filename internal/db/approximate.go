package db

import (
	"bytes"

	"rocksmash/internal/keys"
	"rocksmash/internal/manifest"
	"rocksmash/internal/storage"
)

// SizeEstimate breaks a key range's footprint down by tier.
type SizeEstimate struct {
	LocalBytes int64
	CloudBytes int64
}

// Total returns the combined estimate.
func (s SizeEstimate) Total() int64 { return s.LocalBytes + s.CloudBytes }

// ApproximateSize estimates the on-storage bytes used by keys in
// [start, end) (nil = unbounded), split by tier. File contributions are
// prorated linearly within each table's key range — the usual LSM
// estimate: cheap, metadata-only, and accurate to within a file's internal
// skew. The memtable is not included.
func (d *DB) ApproximateSize(start, end []byte) SizeEstimate {
	if d.shards != nil {
		var est SizeEstimate
		for _, sh := range d.shards {
			e := sh.ApproximateSize(start, end)
			est.LocalBytes += e.LocalBytes
			est.CloudBytes += e.CloudBytes
		}
		return est
	}
	v := d.vs.Current()
	var est SizeEstimate
	var hiIncl []byte
	if end != nil {
		hiIncl = end // OverlapsRange treats bounds inclusively; close enough for an estimate
	}
	v.AllFiles(func(level int, f *manifest.FileMetadata) {
		if !f.OverlapsRange(start, hiIncl) {
			return
		}
		frac := overlapFraction(
			keys.UserKey(f.Smallest), keys.UserKey(f.Largest), start, end)
		n := int64(float64(f.Size) * frac)
		if f.Tier == storage.TierCloud {
			est.CloudBytes += n
		} else {
			est.LocalBytes += n
		}
	})
	return est
}

// overlapFraction estimates what fraction of [lo, hi] falls inside
// [start, end) by comparing 8-byte key prefixes as integers — coarse but
// monotone, which is all an estimate needs.
func overlapFraction(lo, hi, start, end []byte) float64 {
	a, b := keyToFloat(lo), keyToFloat(hi)
	if b <= a {
		return 1 // degenerate (single-key file): count it fully
	}
	s, e := a, b
	if start != nil {
		if v := keyToFloat(start); v > s {
			s = v
		}
	}
	if end != nil {
		if v := keyToFloat(end); v < e {
			e = v
		}
	}
	if e <= s {
		// The range intersects the file's bounds but the coarse prefix
		// projection collapsed; return a small non-zero share.
		return 0.01
	}
	frac := (e - s) / (b - a)
	if frac > 1 {
		frac = 1
	}
	return frac
}

// keyToFloat projects a key's first 8 bytes onto [0, 1).
func keyToFloat(k []byte) float64 {
	var buf [8]byte
	copy(buf[:], k)
	var x uint64
	for _, c := range buf {
		x = x<<8 | uint64(c)
	}
	return float64(x) / float64(^uint64(0))
}

// smallestUserKey returns the store's smallest live user key ("" when
// empty), useful for sizing whole-store ranges.
func (d *DB) smallestUserKey() []byte {
	v := d.vs.Current()
	var lo []byte
	v.AllFiles(func(level int, f *manifest.FileMetadata) {
		uk := keys.UserKey(f.Smallest)
		if lo == nil || bytes.Compare(uk, lo) < 0 {
			lo = uk
		}
	})
	return lo
}
