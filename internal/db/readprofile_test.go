package db

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rocksmash/internal/event"
	"rocksmash/internal/readprof"
)

// profKey generates deterministic keys spread across the keyspace.
func profKey(i int) []byte { return []byte(fmt.Sprintf("prof-%06d", i)) }

// loadTiered writes n keys and settles them into the tree so that reads
// have to traverse levels (and, under PolicyMash, tiers).
func loadTiered(t *testing.T, d *DB, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		mustPut(t, d, string(profKey(i)), fmt.Sprintf("val-%06d", i))
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.CompactAll(); err != nil {
		t.Fatal(err)
	}
}

func TestGetProfiledInvariants(t *testing.T) {
	o := testOptions(PolicyMash)
	o.ReadProfileSampleRate = 1
	d, err := OpenAt(t.TempDir(), o)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	loadTiered(t, d, 2000)
	mustPut(t, d, "memonly", "memval") // stays in the memtable

	// A key served from the tree.
	v, p, err := d.GetProfiled(profKey(123))
	if err != nil || string(v) != "val-000123" {
		t.Fatalf("GetProfiled = %q, %v", v, err)
	}
	if got := p.LevelsProbed(); got < 1 {
		t.Errorf("LevelsProbed = %d, want >= 1", got)
	}
	if p.LevelServed < 0 {
		t.Errorf("LevelServed = %d, want a tree level", p.LevelServed)
	}
	if p.Tables < 1 {
		t.Errorf("Tables = %d, want >= 1", p.Tables)
	}
	if p.BloomNegative > p.BloomChecked {
		t.Errorf("bloom negatives %d > checked %d", p.BloomNegative, p.BloomChecked)
	}
	var tierBlocks int32
	for tier := 0; tier < readprof.NumTiers; tier++ {
		tierBlocks += p.Blocks[tier]
		if p.Blocks[tier] == 0 && p.Bytes[tier] != 0 {
			t.Errorf("tier %d has bytes without blocks", tier)
		}
	}
	if tierBlocks != int32(p.BlocksTotal()) || tierBlocks < 1 {
		t.Errorf("blocks by tier sum %d, BlocksTotal %d", tierBlocks, p.BlocksTotal())
	}
	if p.BytesTotal() <= 0 {
		t.Errorf("BytesTotal = %d, want > 0", p.BytesTotal())
	}
	if !p.Timed || p.TotalNanos <= 0 {
		t.Errorf("profile not timed: timed=%v total=%d", p.Timed, p.TotalNanos)
	}
	if path := p.Path(); path == "" || path == "mem" || path == "none" {
		t.Errorf("Path() = %q for a tree-served key", path)
	}

	// A memtable hit.
	if _, p, err = d.GetProfiled([]byte("memonly")); err != nil {
		t.Fatal(err)
	}
	if p.LevelServed != readprof.LevelMemtable || p.Path() != "mem" {
		t.Errorf("memtable hit: served=%d path=%q", p.LevelServed, p.Path())
	}
	if p.Tables != 0 {
		t.Errorf("memtable hit consulted %d tables", p.Tables)
	}

	// A miss.
	if _, p, err = d.GetProfiled([]byte("prof-missing")); err != ErrNotFound {
		t.Fatalf("missing key: err = %v", err)
	}
	if p.LevelServed != readprof.LevelNone || p.Path() != "none" {
		t.Errorf("miss: served=%d path=%q", p.LevelServed, p.Path())
	}

	// Aggregates saw all three profiled reads.
	ra := d.Metrics().ReadAmp
	if ra.ProfiledGets != 3 || ra.TimedGets != 3 {
		t.Errorf("aggregates: profiled=%d timed=%d, want 3/3", ra.ProfiledGets, ra.TimedGets)
	}
	if ra.MemServes != 1 || ra.NotFound != 1 {
		t.Errorf("aggregates: mem=%d notfound=%d, want 1/1", ra.MemServes, ra.NotFound)
	}
	if ra.BlocksTotal() < 1 || ra.BloomNegative > ra.BloomChecked {
		t.Errorf("aggregates: blocks=%d bloom=%d/%d", ra.BlocksTotal(), ra.BloomNegative, ra.BloomChecked)
	}
}

// TestProfilerOnOffIdenticalResults runs the same workload against two
// stores that differ only in sampling rate and requires identical answers:
// the profiler must be an observer, never a participant.
func TestProfilerOnOffIdenticalResults(t *testing.T) {
	const n = 1500
	open := func(rate int) *DB {
		o := testOptions(PolicyMash)
		o.ReadProfileSampleRate = rate
		d, err := OpenAt(t.TempDir(), o)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		loadTiered(t, d, n)
		return d
	}
	on, off := open(1), open(-1)
	for i := 0; i < n+20; i++ {
		k := profKey(i)
		v1, err1 := on.Get(k)
		v2, err2 := off.Get(k)
		if err1 != err2 || string(v1) != string(v2) {
			t.Fatalf("key %s: profiler-on (%q, %v) != profiler-off (%q, %v)", k, v1, err1, v2, err2)
		}
	}
	if ra := off.Metrics().ReadAmp; ra.ProfiledGets != 0 {
		t.Errorf("disabled profiler still aggregated %d gets", ra.ProfiledGets)
	}
	if ra := on.Metrics().ReadAmp; ra.ProfiledGets == 0 {
		t.Errorf("rate-1 profiler aggregated nothing")
	}
}

// TestSlowReadTraceRoundTrip drives timed reads with a trace listener
// attached and checks the reservoir's SlowRead records survive the JSONL
// round trip with their attribution intact.
func TestSlowReadTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	o := testOptions(PolicyMash)
	o.ReadProfileSampleRate = 1
	o.TracePath = filepath.Join(dir, "trace.jsonl")
	d, err := OpenAt(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	loadTiered(t, d, 1000)
	d.slow.mu.Lock()
	d.slow.keep = 4
	d.slow.window = time.Hour // flushed at Close, not mid-run
	d.slow.mu.Unlock()
	for i := 0; i < 200; i++ {
		if _, err := d.Get(profKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := event.ReadTraceFile(o.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	var slows []event.SlowRead
	for _, rec := range recs {
		if rec.Type != event.TSlowRead {
			continue
		}
		e, err := rec.Decode()
		if err != nil {
			t.Fatalf("decode slow read: %v", err)
		}
		slows = append(slows, e.(event.SlowRead))
	}
	if len(slows) == 0 || len(slows) > 4 {
		t.Fatalf("got %d slow-read records, want 1..4 (reservoir keep=4)", len(slows))
	}
	for _, s := range slows {
		if s.Duration <= 0 || s.LevelsProbed < 1 || s.Path == "" {
			t.Errorf("slow read incomplete: %+v", s)
		}
		if !strings.HasPrefix(s.Key, "prof-") {
			t.Errorf("slow read key %q lost its prefix", s.Key)
		}
	}
}

// TestReadAmpDumpStatsConsistent checks the text report renders the same
// numbers Metrics exposes.
func TestReadAmpDumpStatsConsistent(t *testing.T) {
	o := testOptions(PolicyMash)
	o.ReadProfileSampleRate = 1
	d, err := OpenAt(t.TempDir(), o)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	loadTiered(t, d, 800)
	for i := 0; i < 100; i++ {
		if _, err := d.Get(profKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	dump := d.DumpStats()
	ra := d.Metrics().ReadAmp
	want := fmt.Sprintf("Profiled gets: %d (%d timed)", ra.ProfiledGets, ra.TimedGets)
	if !strings.Contains(dump, want) {
		t.Errorf("DumpStats missing %q:\n%s", want, dump)
	}
	if !strings.Contains(dump, "** Read Path **") {
		t.Errorf("DumpStats missing the Read Path section")
	}
	if !strings.Contains(dump, readprof.TierBlockCache.String()) {
		t.Errorf("DumpStats missing the per-tier table")
	}
}

// TestIteratorProfileAggregates verifies scans land in the iterator-side
// aggregates, separate from per-Get read amp.
func TestIteratorProfileAggregates(t *testing.T) {
	o := testOptions(PolicyMash)
	o.ReadProfileSampleRate = 1
	d, err := OpenAt(t.TempDir(), o)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	loadTiered(t, d, 1000)
	it, err := d.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for it.First(); it.Valid(); it.Next() {
		n++
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("iterated %d keys, want 1000", n)
	}
	ra := d.Metrics().ReadAmp
	if ra.IterSeeks < 1 {
		t.Errorf("IterSeeks = %d, want >= 1", ra.IterSeeks)
	}
	var blocks int64
	for tier := 0; tier < readprof.NumTiers; tier++ {
		blocks += ra.IterBlocks[tier]
	}
	if blocks < 1 {
		t.Errorf("iterator read %d profiled blocks, want >= 1", blocks)
	}
	if ra.ProfiledGets != 0 {
		t.Errorf("scan leaked into per-Get aggregates: %d profiled gets", ra.ProfiledGets)
	}
}

// TestConcurrentProfiledReads hammers profiled Gets against concurrent
// writers with the commit pipeline active; run under -race this proves the
// profile threading adds no shared-state races.
func TestConcurrentProfiledReads(t *testing.T) {
	o := testOptions(PolicyMash)
	o.ReadProfileSampleRate = 1
	d, err := OpenAt(t.TempDir(), o)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	loadTiered(t, d, 500)

	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if _, err := d.Get(profKey((i * 7) % 500)); err != nil && err != ErrNotFound {
					errs <- err
					return
				}
			}
		}(w)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				if err := d.Put(profKey(w*1000+i), []byte("cv")); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if ra := d.Metrics().ReadAmp; ra.ProfiledGets != workers*300 {
		t.Errorf("profiled %d gets, want %d", ra.ProfiledGets, workers*300)
	}
}

// TestGetAllocsProfilerParity: the pooled profiler must not add steady-state
// allocations to Get relative to running with profiling disabled.
func TestGetAllocsProfilerParity(t *testing.T) {
	measure := func(rate int) float64 {
		o := testOptions(PolicyLocalOnly)
		o.MemtableBytes = 64 << 20 // no flushes during measurement
		o.ReadProfileSampleRate = rate
		d, err := OpenAt(t.TempDir(), o)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		key := []byte("alloc-parity-key")
		mustPut(t, d, string(key), "v")
		return testing.AllocsPerRun(2000, func() {
			if _, err := d.Get(key); err != nil {
				t.Fatal(err)
			}
		})
	}
	off := measure(-1)
	on := measure(64)
	// Allow sub-1 slack: a GC clearing the sync.Pool mid-run re-allocates
	// one profile, but steady state must be identical.
	if on > off+0.5 {
		t.Errorf("profiler adds allocations: on=%.3f off=%.3f allocs/Get", on, off)
	}
}

func BenchmarkGetProfilerOff(b *testing.B) {
	benchmarkGetRate(b, -1, false)
}

func BenchmarkGetProfilerSampled(b *testing.B) {
	benchmarkGetRate(b, 64, false)
}

func BenchmarkGetProfiled(b *testing.B) {
	benchmarkGetRate(b, 1, true)
}

func benchmarkGetRate(b *testing.B, rate int, full bool) {
	o := testOptions(PolicyLocalOnly)
	o.MemtableBytes = 256 << 20
	o.ReadProfileSampleRate = rate
	d, err := OpenAt(b.TempDir(), o)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { d.Close() })
	keys := benchKeys(1 << 12)
	val := make([]byte, 100)
	for _, k := range keys {
		if err := d.Put(k, val); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&(len(keys)-1)]
		if full {
			if _, _, err := d.GetProfiled(k); err != nil {
				b.Fatal(err)
			}
		} else if _, err := d.Get(k); err != nil {
			b.Fatal(err)
		}
	}
}
