package db

import (
	"bytes"
	"fmt"
	"testing"

	"rocksmash/internal/batch"
)

// TestBatchLargerThanMemtable commits a batch that exceeds the whole
// memtable budget; it must be admitted (once the memtable is empty) rather
// than livelocking the write path.
func TestBatchLargerThanMemtable(t *testing.T) {
	opts := testOptions(PolicyMash) // 64 KiB memtable
	d, err := OpenAt(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Put something first so the memtable is non-empty.
	mustPut(t, d, "pre", "x")

	b := batch.New()
	big := bytes.Repeat([]byte("y"), 16<<10)
	for i := 0; i < 16; i++ { // 256 KiB total, 4x the memtable budget
		b.Set([]byte(fmt.Sprintf("big%02d", i)), big)
	}
	if err := d.Write(b); err != nil {
		t.Fatal(err)
	}
	mustGet(t, d, "pre", "x")
	for i := 0; i < 16; i++ {
		v, err := d.Get([]byte(fmt.Sprintf("big%02d", i)))
		if err != nil || !bytes.Equal(v, big) {
			t.Fatalf("big%02d: len=%d err=%v", i, len(v), err)
		}
	}
	// And it must survive flush + reopen.
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	mustGet(t, d, "big00", string(big))
}
