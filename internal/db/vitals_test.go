package db

import (
	"runtime"
	"testing"
	"time"
)

// TestVitalsDisabledByDefault: with VitalsInterval at its zero default the
// sampler never exists — Vitals() is nil and no goroutine is running for
// it.
func TestVitalsDisabledByDefault(t *testing.T) {
	d, _ := openTest(t, PolicyLocalOnly)
	defer d.Close()
	if d.Vitals() != nil {
		t.Fatal("Vitals() non-nil with sampling disabled")
	}
}

// TestVitalsSamplerLifecycle: enabling the interval starts one sampler
// that accumulates ring samples, stops cleanly on Close (no goroutine
// leak), and stays readable afterwards.
func TestVitalsSamplerLifecycle(t *testing.T) {
	before := runtime.NumGoroutine()
	o := testOptions(PolicyLocalOnly)
	o.VitalsInterval = time.Millisecond
	o.VitalsHistory = 128
	d, err := OpenAt(t.TempDir(), o)
	if err != nil {
		t.Fatal(err)
	}
	v := d.Vitals()
	if v == nil {
		t.Fatal("Vitals() nil with sampling enabled")
	}
	mustPut(t, d, "k", "v")
	mustGet(t, d, "k", "v")
	deadline := time.Now().Add(2 * time.Second)
	for len(v.Samples()) < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := len(v.Samples()); got < 3 {
		t.Fatalf("sampler took only %d samples", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// The ring stays readable (frozen) after Close, and the latest sample
	// reflects the workload.
	last, ok := v.Latest()
	if !ok {
		t.Fatal("ring unreadable after Close")
	}
	if last.Writes == 0 || last.Reads == 0 {
		t.Fatalf("final sample missed the workload: %+v", last)
	}
	// All background goroutines (sampler included) must be gone.
	deadline = time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines grew %d -> %d after Close", before, after)
	}
}

// TestVitalsSampleSnapshot exercises the Metrics -> Sample adapter against
// a store with real traffic: the cumulative counters and level arrays must
// be populated coherently.
func TestVitalsSampleSnapshot(t *testing.T) {
	d, _ := openTest(t, PolicyLocalOnly)
	defer d.Close()
	fillKeys(t, d, 1500, 100)
	if err := d.CompactAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get([]byte("key000001")); err != nil && err != ErrNotFound {
		t.Fatal(err)
	}
	s := d.VitalsSample()
	if s.UnixNano == 0 {
		t.Error("sample has no timestamp")
	}
	if s.Writes == 0 || s.BytesWritten == 0 || s.Flushes == 0 {
		t.Errorf("write counters empty: %+v", s)
	}
	if s.Compactions == 0 || s.CompactBytesOut == 0 {
		t.Errorf("compaction counters empty: %+v", s)
	}
	if len(s.LevelFiles) == 0 || len(s.LevelBytesIn) != len(s.LevelFiles) {
		t.Errorf("level arrays inconsistent: files=%d in=%d", len(s.LevelFiles), len(s.LevelBytesIn))
	}
	var in, out int64
	for i := range s.LevelBytesIn {
		in += s.LevelBytesIn[i]
		out += s.LevelBytesOut[i]
	}
	if in != s.CompactBytesIn || out != s.CompactBytesOut {
		t.Errorf("per-level compaction bytes (in=%d out=%d) != totals (in=%d out=%d)",
			in, out, s.CompactBytesIn, s.CompactBytesOut)
	}
	if len(s.ShardOps) != 0 {
		t.Errorf("unsharded store reported ShardOps: %v", s.ShardOps)
	}
}

// TestLevelWriteAmpReconciles: the per-level compaction ledger must sum
// exactly to the store-wide CompactBytesIn/Out counters, and the windowed
// write-amp identity (FlushBytes+CompactBytesOut)/BytesWritten must hold.
func TestLevelWriteAmpReconciles(t *testing.T) {
	for _, shards := range []int{1, 2} {
		name := "unsharded"
		if shards > 1 {
			name = "sharded"
		}
		t.Run(name, func(t *testing.T) {
			o := testOptions(PolicyLocalOnly)
			o.Shards = shards
			d, err := OpenAt(t.TempDir(), o)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			fillKeys(t, d, 2000, 100)
			if err := d.CompactAll(); err != nil {
				t.Fatal(err)
			}
			m := d.Metrics()
			if m.Compactions == 0 {
				t.Fatal("no compactions ran under test geometry")
			}
			if len(m.LevelWriteAmp) == 0 {
				t.Fatal("Metrics().LevelWriteAmp empty")
			}
			var count, in, out int64
			seen := false
			for _, lw := range m.LevelWriteAmp {
				count += lw.Count
				in += lw.BytesInSource + lw.BytesInTarget
				out += lw.BytesOut
				if lw.Count > 0 {
					seen = true
					if lw.Target != lw.Level+1 {
						t.Errorf("L%d target = %d, want %d", lw.Level, lw.Target, lw.Level+1)
					}
					if lw.WriteAmp() <= 0 {
						t.Errorf("L%d WriteAmp() = %v, want > 0", lw.Level, lw.WriteAmp())
					}
				}
			}
			if !seen {
				t.Fatal("no level recorded a compaction")
			}
			if count != m.Compactions {
				t.Errorf("per-level count sum = %d, Compactions = %d", count, m.Compactions)
			}
			if in != m.CompactBytesIn {
				t.Errorf("per-level bytes-in sum = %d, CompactBytesIn = %d", in, m.CompactBytesIn)
			}
			if out != m.CompactBytesOut {
				t.Errorf("per-level bytes-out sum = %d, CompactBytesOut = %d", out, m.CompactBytesOut)
			}
			if wa := m.WriteAmp(); wa < 1 {
				t.Errorf("cumulative WriteAmp() = %v, want >= 1 after flush+compact", wa)
			}
		})
	}
}

// TestCompactionDebtAndSpaceAmp: a fully-compacted tree owes nothing and
// has space amplification >= 1 (== total/deepest-level bytes).
func TestCompactionDebtAndSpaceAmp(t *testing.T) {
	d, _ := openTest(t, PolicyLocalOnly)
	defer d.Close()
	fillKeys(t, d, 2000, 100)
	if err := d.CompactAll(); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.CompactionDebt != 0 {
		t.Errorf("CompactionDebt = %d after CompactAll, want 0", m.CompactionDebt)
	}
	if m.SpaceAmp < 1 {
		t.Errorf("SpaceAmp = %v, want >= 1", m.SpaceAmp)
	}
}

// TestVitalsDisabledAllocParity: with the sampler off, the Get hot path
// allocates exactly as much as with it on — vitals must never appear on
// the hot path at all (the sampler is a background goroutine).
func TestVitalsDisabledAllocParity(t *testing.T) {
	measure := func(interval time.Duration) float64 {
		o := testOptions(PolicyLocalOnly)
		o.MemtableBytes = 64 << 20 // no flushes during measurement
		o.VitalsInterval = interval
		d, err := OpenAt(t.TempDir(), o)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		key := []byte("vitals-alloc-key")
		mustPut(t, d, string(key), "v")
		return testing.AllocsPerRun(2000, func() {
			if _, err := d.Get(key); err != nil {
				t.Fatal(err)
			}
		})
	}
	off := measure(0)
	on := measure(50 * time.Millisecond)
	// Allow sub-1 slack for incidental background activity during a run.
	if off > on+0.5 {
		t.Errorf("disabled-vitals hot path allocates more than enabled: off=%.3f on=%.3f allocs/Get", off, on)
	}
}
