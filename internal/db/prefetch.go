package db

import (
	"sync"

	"rocksmash/internal/readprof"
	"rocksmash/internal/sstable"
	"rocksmash/internal/storage"
)

// Compaction prefetch: merging N sorted inputs consumes each table's data
// blocks strictly in file order, so the read pattern is known in advance.
// A prefetcher walks each cloud input's block index ahead of the merge
// iterator and issues range GETs covering CompactionPrefetchBlocks blocks
// at a time into a lookahead buffer. The merge loop then consumes decoded
// blocks from memory instead of paying per-block first-byte latency, and
// the span fetches of different inputs overlap each other through a shared
// worker pool.

// prefetchWorkers bounds concurrent span GETs per compaction. Object
// stores serve parallel requests independently, so a handful of streams is
// enough to hide first-byte latency without flooding the backend.
const prefetchWorkers = 4

// prefetchLookaheadSpans is how many spans beyond the one being consumed
// are kept in flight per table, bounding lookahead memory to roughly
// lookahead × CompactionPrefetchBlocks × BlockBytes per input.
const prefetchLookaheadSpans = 2

// prefetchPool runs span fetches for one compaction. The queue is
// unbounded (submission never blocks) so a table prefetcher may schedule
// while holding its own lock; total outstanding work is already bounded by
// the per-table lookahead window.
type prefetchPool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func()
	closed bool
	wg     sync.WaitGroup
}

func newPrefetchPool() *prefetchPool {
	p := &prefetchPool{}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < prefetchWorkers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *prefetchPool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		job := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()
		job()
	}
}

func (p *prefetchPool) submit(job func()) {
	p.mu.Lock()
	p.queue = append(p.queue, job)
	p.mu.Unlock()
	p.cond.Signal()
}

// close drains outstanding fetches and stops the workers. It must run
// before the compaction releases its table references, so in-flight reads
// never race with reader teardown.
func (p *prefetchPool) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

const (
	spanIdle = iota
	spanQueued
	spanDone
)

// tablePrefetcher pipelines the block reads of one compaction input.
type tablePrefetcher struct {
	f     storage.Reader
	pool  *prefetchPool
	stats *Stats
	spans [][]sstable.Handle

	mu     sync.Mutex
	cond   *sync.Cond
	state  []int
	bodies [][][]byte // per span, per block; freed once consumption passes
	errs   []error
	freed  int // spans below this index have had their bodies released
}

// newTablePrefetcher plans the span schedule from the table's block index.
func newTablePrefetcher(r *sstable.Reader, pool *prefetchPool, blocksPerSpan int, stats *Stats) (*tablePrefetcher, error) {
	hs, err := r.DataHandles()
	if err != nil {
		return nil, err
	}
	spans := sstable.PlanSpans(hs, blocksPerSpan)
	p := &tablePrefetcher{
		f:      r.File(),
		pool:   pool,
		stats:  stats,
		spans:  spans,
		state:  make([]int, len(spans)),
		bodies: make([][][]byte, len(spans)),
		errs:   make([]error, len(spans)),
	}
	p.cond = sync.NewCond(&p.mu)
	return p, nil
}

// scheduleLocked queues idle spans in [from, from+lookahead].
func (p *tablePrefetcher) scheduleLocked(from int) {
	hi := from + prefetchLookaheadSpans
	if hi >= len(p.spans) {
		hi = len(p.spans) - 1
	}
	for i := from; i <= hi; i++ {
		if p.state[i] != spanIdle {
			continue
		}
		p.state[i] = spanQueued
		i := i
		p.pool.submit(func() { p.fetchSpan(i) })
	}
}

func (p *tablePrefetcher) fetchSpan(i int) {
	bodies, err := sstable.ReadRawSpan(p.f, p.spans[i])
	p.mu.Lock()
	p.bodies[i], p.errs[i] = bodies, err
	p.state[i] = spanDone
	p.mu.Unlock()
	p.cond.Broadcast()
	if err == nil && p.stats != nil {
		p.stats.PrefetchSpans.Add(1)
		p.stats.PrefetchBlocks.Add(int64(len(p.spans[i])))
	}
}

// get returns the prefetched body for the block at hd, scheduling spans
// ahead of it and blocking until its span lands. ok=false means the block
// is outside the planned schedule (caller falls back to a direct read); a
// span fetch failure is returned as an error so it surfaces through the
// merge iterator instead of being silently retried.
func (p *tablePrefetcher) get(hd sstable.Handle) (body []byte, err error, ok bool) {
	si, bi := p.locate(hd.Offset)
	if si < 0 {
		return nil, nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	// Consumption has moved to span si: earlier spans can never be read
	// again (merge order is strictly forward), release their memory.
	for ; p.freed < si; p.freed++ {
		p.bodies[p.freed] = nil
	}
	p.scheduleLocked(si)
	for p.state[si] != spanDone {
		p.cond.Wait()
	}
	if p.errs[si] != nil {
		return nil, p.errs[si], true
	}
	return p.bodies[si][bi], nil, true
}

// locate maps a block offset to its (span, block) indices, or (-1, -1).
func (p *tablePrefetcher) locate(off uint64) (int, int) {
	lo, hi := 0, len(p.spans)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.spans[mid][0].Offset <= off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	si := lo - 1
	if si < 0 {
		return -1, -1
	}
	for bi, h := range p.spans[si] {
		if h.Offset == off {
			return si, bi
		}
	}
	return -1, -1
}

// prefetchFetchFor routes a compaction input's data-block reads through its
// prefetcher, falling back to the scan-resistant direct path for any block
// outside the prefetch plan.
func (tc *tableCache) prefetchFetchFor(h *tableHandle, pf *tablePrefetcher) sstable.FetchFunc {
	fallback := tc.compactionFetchFor(h)
	return func(fileNum uint64, hd sstable.Handle, prof *readprof.Profile) ([]byte, error) {
		if body, err, ok := pf.get(hd); ok {
			return body, err
		}
		return fallback(fileNum, hd, prof)
	}
}

// newPrefetchTableIter is newCompactionTableIter with pipelined reads.
func newPrefetchTableIter(h *tableHandle, tc *tableCache, pf *tablePrefetcher) *tableIter {
	return &tableIter{h: h, it: h.reader.NewIterWithFetch(tc.prefetchFetchFor(h, pf))}
}
