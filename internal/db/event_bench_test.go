package db

import (
	"fmt"
	"testing"

	"rocksmash/internal/event"
)

// benchDB opens a local-only store sized so the benchmark loop never
// flushes: the measurement isolates the per-op instrumentation cost.
func benchDB(b *testing.B, l event.Listener) *DB {
	b.Helper()
	o := testOptions(PolicyLocalOnly)
	o.MemtableBytes = 256 << 20
	o.EventListener = l
	d, err := OpenAt(b.TempDir(), o)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { d.Close() })
	return d
}

func benchKeys(n int) [][]byte {
	ks := make([][]byte, n)
	for i := range ks {
		ks[i] = []byte(fmt.Sprintf("bench-%08d", i))
	}
	return ks
}

func benchmarkPut(b *testing.B, l event.Listener) {
	d := benchDB(b, l)
	keys := benchKeys(1 << 12)
	val := make([]byte, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Put(keys[i&(len(keys)-1)], val); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkGet(b *testing.B, l event.Listener) {
	d := benchDB(b, l)
	keys := benchKeys(1 << 12)
	val := make([]byte, 100)
	for _, k := range keys {
		if err := d.Put(k, val); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Get(keys[i&(len(keys)-1)]); err != nil {
			b.Fatal(err)
		}
	}
}

// The WithListener/nil pairs bound the listener tax on the hot path; the
// observability contract is that the delta stays under a few percent.
func BenchmarkPut(b *testing.B)             { benchmarkPut(b, nil) }
func BenchmarkPutWithListener(b *testing.B) { benchmarkPut(b, event.NopListener{}) }
func BenchmarkGet(b *testing.B)             { benchmarkGet(b, nil) }
func BenchmarkGetWithListener(b *testing.B) { benchmarkGet(b, event.NopListener{}) }
