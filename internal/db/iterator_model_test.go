package db

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestIteratorMatchesModelAtSnapshots takes snapshots at random points
// while mutating the store, then verifies every snapshot's iterator yields
// exactly the model state captured at that moment — even after flushes and
// compactions rewrite the physical layout.
func TestIteratorMatchesModelAtSnapshots(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()

	type capturedState struct {
		snap  *Snapshot
		model map[string]string
	}
	var captures []capturedState
	model := map[string]string{}
	rng := rand.New(rand.NewSource(123))

	for step := 0; step < 3000; step++ {
		k := fmt.Sprintf("key%04d", rng.Intn(300))
		switch rng.Intn(10) {
		case 0:
			if err := d.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		default:
			v := fmt.Sprintf("v%d-%s", step, bytes.Repeat([]byte("x"), rng.Intn(100)))
			if err := d.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		}
		if step%500 == 250 && len(captures) < 4 {
			cp := map[string]string{}
			for k, v := range model {
				cp[k] = v
			}
			captures = append(captures, capturedState{d.GetSnapshot(), cp})
		}
		if step%900 == 800 {
			if err := d.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := d.CompactAll(); err != nil {
		t.Fatal(err)
	}

	check := func(it *Iterator, want map[string]string, label string) {
		t.Helper()
		got := map[string]string{}
		var keysSeen []string
		for it.First(); it.Valid(); it.Next() {
			got[string(it.Key())] = string(it.Value())
			keysSeen = append(keysSeen, string(it.Key()))
		}
		if it.Err() != nil {
			t.Fatalf("%s: %v", label, it.Err())
		}
		if !sort.StringsAreSorted(keysSeen) {
			t.Fatalf("%s: iterator out of order", label)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d keys, want %d", label, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("%s: %q = %q want %q", label, k, got[k], v)
			}
		}
	}

	// Head state.
	it, err := d.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	check(it, model, "head")
	it.Close()

	// Every captured snapshot still sees its own history.
	for i, c := range captures {
		sit, err := c.snap.NewIterator()
		if err != nil {
			t.Fatal(err)
		}
		check(sit, c.model, fmt.Sprintf("snapshot %d", i))
		sit.Close()
		c.snap.Release()
	}
}

// TestIteratorSeekMatchesModel verifies Seek lands exactly where a sorted
// reference says it should, across many random targets.
func TestIteratorSeekMatchesModel(t *testing.T) {
	d, _ := openTest(t, PolicyMash)
	defer d.Close()
	model := map[string]bool{}
	rng := rand.New(rand.NewSource(321))
	for i := 0; i < 1200; i++ {
		k := fmt.Sprintf("key%05d", rng.Intn(5000))
		mustPut(t, d, k, "v")
		model[k] = true
	}
	if err := d.CompactAll(); err != nil {
		t.Fatal(err)
	}
	var sorted []string
	for k := range model {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	it, err := d.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	for trial := 0; trial < 500; trial++ {
		target := fmt.Sprintf("key%05d", rng.Intn(5200))
		it.Seek([]byte(target))
		i := sort.SearchStrings(sorted, target)
		if i == len(sorted) {
			if it.Valid() {
				t.Fatalf("Seek(%q): expected exhausted, got %q", target, it.Key())
			}
			continue
		}
		if !it.Valid() || string(it.Key()) != sorted[i] {
			t.Fatalf("Seek(%q) landed on %q (valid=%v), want %q", target, it.Key(), it.Valid(), sorted[i])
		}
	}
}
