package db

import (
	"bytes"
	"errors"

	"rocksmash/internal/keys"
	"rocksmash/internal/manifest"
	"rocksmash/internal/readprof"
	"rocksmash/internal/skiplist"
	"rocksmash/internal/sstable"
)

// internalIterator walks internal keys in either direction.
type internalIterator interface {
	First()
	Last()
	SeekGE(ikey []byte)
	SeekLT(ikey []byte)
	Next()
	Prev()
	Valid() bool
	Key() []byte
	Value() []byte
	Err() error
	Close() error
}

// memIter adapts the skiplist iterator.
type memIter struct {
	it *skiplist.Iterator
}

func (m *memIter) First()             { m.it.First() }
func (m *memIter) Last()              { m.it.Last() }
func (m *memIter) SeekGE(ikey []byte) { m.it.SeekGE(ikey) }
func (m *memIter) SeekLT(ikey []byte) { m.it.SeekLT(ikey) }
func (m *memIter) Next()              { m.it.Next() }
func (m *memIter) Prev()              { m.it.Prev() }
func (m *memIter) Valid() bool        { return m.it.Valid() }
func (m *memIter) Key() []byte        { return m.it.Key() }
func (m *memIter) Value() []byte      { return m.it.Value() }
func (m *memIter) Err() error         { return nil }
func (m *memIter) Close() error       { return nil }

// tableIter adapts one table's iterator, holding its handle reference.
type tableIter struct {
	h  *tableHandle
	it *sstable.Iter
}

func newTableIter(h *tableHandle) *tableIter {
	return &tableIter{h: h, it: h.reader.NewIter()}
}

// newCompactionTableIter reads through the caches without admitting
// blocks, so bulk merges do not evict the hot set.
func newCompactionTableIter(h *tableHandle, tc *tableCache) *tableIter {
	return &tableIter{h: h, it: h.reader.NewIterWithFetch(tc.compactionFetchFor(h))}
}

func (t *tableIter) First()             { t.it.First() }
func (t *tableIter) Last()              { t.it.Last() }
func (t *tableIter) SeekGE(ikey []byte) { t.it.SeekGE(ikey) }
func (t *tableIter) SeekLT(ikey []byte) { t.it.SeekLT(ikey) }
func (t *tableIter) Next()              { t.it.Next() }
func (t *tableIter) Prev()              { t.it.Prev() }
func (t *tableIter) Valid() bool        { return t.it.Valid() }
func (t *tableIter) Key() []byte        { return t.it.Key() }
func (t *tableIter) Value() []byte      { return t.it.Value() }
func (t *tableIter) Err() error         { return t.it.Err() }
func (t *tableIter) Close() error {
	if t.h != nil {
		t.h.release()
		t.h = nil
	}
	return nil
}

// levelIter concatenates the sorted, non-overlapping files of one level
// (≥ 1), opening at most one table at a time.
type levelIter struct {
	db    *DB
	files []*manifest.FileMetadata
	idx   int
	cur   *tableIter
	prof  *readprof.Profile // attached to each lazily opened table iter
	err   error
}

func newLevelIter(db *DB, files []*manifest.FileMetadata) *levelIter {
	return &levelIter{db: db, files: files, idx: -1}
}

func (l *levelIter) openFile(i int) bool {
	if l.cur != nil {
		l.cur.Close()
		l.cur = nil
	}
	if i < 0 || i >= len(l.files) {
		l.idx = len(l.files)
		return false
	}
	h, err := l.db.tables.get(l.db, l.files[i])
	if err != nil {
		l.err = err
		l.idx = len(l.files)
		return false
	}
	l.cur = newTableIter(h)
	l.cur.it.SetProfile(l.prof)
	l.idx = i
	return true
}

func (l *levelIter) First() {
	if l.openFile(0) {
		l.cur.First()
		l.skipExhausted()
	}
}

func (l *levelIter) SeekGE(ikey []byte) {
	// Find the first file whose largest >= ikey.
	lo, hi := 0, len(l.files)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys.Compare(l.files[mid].Largest, ikey) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if l.openFile(lo) {
		l.cur.SeekGE(ikey)
		l.skipExhausted()
	}
}

func (l *levelIter) Next() {
	if l.cur == nil {
		return
	}
	l.cur.Next()
	l.skipExhausted()
}

// Last positions at the final entry of the level.
func (l *levelIter) Last() {
	if l.openFile(len(l.files) - 1) {
		l.cur.Last()
		l.skipExhaustedBackward()
	}
}

// SeekLT positions at the last entry with key < ikey.
func (l *levelIter) SeekLT(ikey []byte) {
	// Find the last file whose smallest < ikey.
	lo, hi := 0, len(l.files)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys.Compare(l.files[mid].Smallest, ikey) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if l.openFile(lo - 1) {
		l.cur.SeekLT(ikey)
		l.skipExhaustedBackward()
	}
}

// Prev moves one entry backward, crossing file boundaries as needed.
func (l *levelIter) Prev() {
	if l.cur == nil {
		return
	}
	l.cur.Prev()
	l.skipExhaustedBackward()
}

func (l *levelIter) skipExhausted() {
	for l.cur != nil && !l.cur.Valid() {
		if err := l.cur.Err(); err != nil {
			l.err = err
			l.cur.Close()
			l.cur = nil
			return
		}
		if !l.openFile(l.idx + 1) {
			return
		}
		l.cur.First()
	}
}

func (l *levelIter) skipExhaustedBackward() {
	for l.cur != nil && !l.cur.Valid() {
		if err := l.cur.Err(); err != nil {
			l.err = err
			l.cur.Close()
			l.cur = nil
			return
		}
		if !l.openFile(l.idx - 1) {
			return
		}
		l.cur.Last()
	}
}

func (l *levelIter) Valid() bool { return l.cur != nil && l.cur.Valid() }
func (l *levelIter) Key() []byte {
	return l.cur.Key()
}
func (l *levelIter) Value() []byte { return l.cur.Value() }
func (l *levelIter) Err() error    { return l.err }
func (l *levelIter) Close() error {
	if l.cur != nil {
		l.cur.Close()
		l.cur = nil
	}
	return l.err
}

// mergingIter N-way merges child iterators in either direction. Ties on
// identical internal keys cannot occur (sequence numbers are unique); ties
// on user keys resolve by internal-key order, which puts newer entries
// first when moving forward. Switching direction mid-stream re-seeks the
// non-current children around the current key (the LevelDB technique).
//
// Child selection runs on a loser tree: internal nodes 1..k-1 record the
// loser of their match and tree[0] the overall winner, so a seek costs one
// full O(k) tournament but every advance replays only the winner's
// leaf-to-root path — O(log k) compares instead of the former linear
// findSmallest/findLargest scan.
type mergingIter struct {
	children []internalIterator
	tree     []int // loser tree over child indices; tree[0] is the winner
	cur      int   // index of child at the merge frontier, -1 if exhausted
	reverse  bool
	err      error
}

func newMergingIter(children ...internalIterator) *mergingIter {
	return &mergingIter{children: children, cur: -1}
}

// beats reports whether child a precedes child b in the current direction.
// Exhausted children always lose, and the (exhausted, exhausted) tie breaks
// by index, so the order is total.
func (m *mergingIter) beats(a, b int) bool {
	av, bv := m.children[a].Valid(), m.children[b].Valid()
	switch {
	case !av && !bv:
		return a < b
	case !av:
		return false
	case !bv:
		return true
	}
	if c := keys.Compare(m.children[a].Key(), m.children[b].Key()); c != 0 {
		if m.reverse {
			return c > 0
		}
		return c < 0
	}
	return a < b
}

// initNode computes the winner of the subtree rooted at node, recording
// each match's loser at its internal node. Leaves live at k..2k-1; leaf
// k+i stands for child i.
func (m *mergingIter) initNode(node int) int {
	if k := len(m.children); node >= k {
		return node - k
	}
	a := m.initNode(2 * node)
	b := m.initNode(2*node + 1)
	if m.beats(a, b) {
		m.tree[node] = b
		return a
	}
	m.tree[node] = a
	return b
}

// build replays the whole tournament (after a seek or direction switch).
func (m *mergingIter) build() {
	k := len(m.children)
	if k == 0 {
		m.cur = -1
		return
	}
	if m.tree == nil {
		m.tree = make([]int, k)
	}
	if k == 1 {
		m.tree[0] = 0
	} else {
		m.tree[0] = m.initNode(1)
	}
	m.setCur()
}

// fix replays only the advanced winner's leaf-to-root path.
func (m *mergingIter) fix(w int) {
	if k := len(m.children); k >= 2 {
		for node := (w + k) / 2; node >= 1; node /= 2 {
			if m.beats(m.tree[node], w) {
				m.tree[node], w = w, m.tree[node]
			}
		}
		m.tree[0] = w
	}
	m.setCur()
}

func (m *mergingIter) setCur() {
	if w := m.tree[0]; m.children[w].Valid() {
		m.cur = w
	} else {
		m.cur = -1
	}
}

// captureErrs folds every child's error state, preserving the contract
// that a child failure surfaces on the next positioning check.
func (m *mergingIter) captureErrs() {
	for _, c := range m.children {
		if err := c.Err(); err != nil && m.err == nil {
			m.err = err
		}
	}
}

func (m *mergingIter) First() {
	for _, c := range m.children {
		c.First()
	}
	m.reverse = false
	m.captureErrs()
	m.build()
}

func (m *mergingIter) Last() {
	for _, c := range m.children {
		c.Last()
	}
	m.reverse = true
	m.captureErrs()
	m.build()
}

func (m *mergingIter) SeekGE(ikey []byte) {
	for _, c := range m.children {
		c.SeekGE(ikey)
	}
	m.reverse = false
	m.captureErrs()
	m.build()
}

func (m *mergingIter) SeekLT(ikey []byte) {
	for _, c := range m.children {
		c.SeekLT(ikey)
	}
	m.reverse = true
	m.captureErrs()
	m.build()
}

func (m *mergingIter) Next() {
	if m.cur < 0 {
		return
	}
	if m.reverse {
		// Direction switch: every other child must be repositioned to the
		// first key after the current one. Internal keys are unique, so
		// SeekGE(current) cannot land on an equal key in other children.
		cur := append([]byte(nil), m.children[m.cur].Key()...)
		for i, c := range m.children {
			if i != m.cur {
				c.SeekGE(cur)
			}
		}
		m.reverse = false
		m.children[m.cur].Next()
		m.captureErrs()
		m.build()
		return
	}
	w := m.cur
	m.children[w].Next()
	if err := m.children[w].Err(); err != nil && m.err == nil {
		m.err = err
	}
	m.fix(w)
}

func (m *mergingIter) Prev() {
	if m.cur < 0 {
		return
	}
	if !m.reverse {
		// Direction switch: reposition the other children to the last key
		// before the current one.
		cur := append([]byte(nil), m.children[m.cur].Key()...)
		for i, c := range m.children {
			if i != m.cur {
				c.SeekLT(cur)
			}
		}
		m.reverse = true
		m.children[m.cur].Prev()
		m.captureErrs()
		m.build()
		return
	}
	w := m.cur
	m.children[w].Prev()
	if err := m.children[w].Err(); err != nil && m.err == nil {
		m.err = err
	}
	m.fix(w)
}

func (m *mergingIter) Valid() bool   { return m.cur >= 0 && m.err == nil }
func (m *mergingIter) Key() []byte   { return m.children[m.cur].Key() }
func (m *mergingIter) Value() []byte { return m.children[m.cur].Value() }
func (m *mergingIter) Err() error    { return m.err }
func (m *mergingIter) Close() error {
	var firstErr error
	for _, c := range m.children {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if m.err != nil {
		return m.err
	}
	return firstErr
}

// Iterator is the user-facing bidirectional iterator over live keys at a
// snapshot. It collapses internal versions: for each user key the newest
// visible entry wins, and tombstones hide older versions.
type Iterator struct {
	db     *DB
	merged internalIterator
	seq    uint64

	// kids is the facade mode of a sharded store: one child Iterator per
	// keyspace shard, all bound to the same snapshot sequence, N-way merged
	// by user key. Shard keyspaces are disjoint, so no deduplication is
	// needed — the smallest (or largest, in reverse) valid child wins and
	// its entry is copied into key/value. When kids is nil the iterator is
	// a plain single-LSM iterator over merged.
	kids []*Iterator
	kcur int  // index of the child at the merge frontier, -1 when exhausted
	krev bool // facade merge direction

	// prof accumulates the iterator's data-block reads by source tier over
	// its whole lifetime (nil when profiling is disabled); seeks counts
	// positioning operations. Both fold into the DB's scan-side aggregates
	// at Close, kept separate from per-Get read-amp accounting. nkeys
	// counts live keys yielded, the denominator of the store's
	// blocks-per-scanned-key rate.
	prof  *readprof.Profile
	seeks int64
	nkeys int64

	key    []byte
	value  []byte
	valid  bool
	err    error
	closed bool
}

// NewIterator returns an iterator over the DB at the current sequence.
func (d *DB) NewIterator() (*Iterator, error) {
	if d.shards != nil {
		// Catch the global watermark up to the acked frontier so every
		// write that returned before this call is inside the merged view.
		d.seqs.waitVisible(d.ackedSeq())
		return d.NewIteratorAt(d.seqs.visible.Load())
	}
	return d.NewIteratorAt(d.lastSeq.Load())
}

// NewIteratorAt returns an iterator at snapshot seq.
func (d *DB) NewIteratorAt(seq uint64) (*Iterator, error) {
	if d.shards != nil {
		kids := make([]*Iterator, len(d.shards))
		for i, sh := range d.shards {
			k, err := sh.NewIteratorAt(seq)
			if err != nil {
				for _, kk := range kids[:i] {
					_ = kk.Close()
				}
				return nil, err
			}
			kids[i] = k
		}
		return &Iterator{db: d, kids: kids, kcur: -1, seq: seq}, nil
	}
	if d.closed.Load() {
		return nil, ErrClosed
	}
	rs := d.rs.Load()
	mem, imm := rs.mem, rs.imm
	recovered := rs.recovered
	v := d.vs.Current()

	var prof *readprof.Profile
	if rate := d.opts.ReadProfileSampleRate; rate > 0 {
		prof = getProfile()
		prof.Timed = rate == 1 || d.profTick.Add(1)%uint64(rate) == 0
	}

	var children []internalIterator
	children = append(children, &memIter{mem.NewIterator()})
	if imm != nil {
		children = append(children, &memIter{imm.NewIterator()})
	}
	for _, m := range recovered {
		children = append(children, &memIter{m.NewIterator()})
	}
	for _, f := range v.Levels[0] {
		h, err := d.tables.get(d, f)
		if err != nil {
			for _, c := range children {
				c.Close()
			}
			if prof != nil {
				profilePool.Put(prof)
			}
			return nil, err
		}
		ti := newTableIter(h)
		ti.it.SetProfile(prof)
		children = append(children, ti)
	}
	for lvl := 1; lvl < manifest.NumLevels; lvl++ {
		files := v.Levels[lvl]
		if len(files) == 0 {
			continue
		}
		// A fresh sorted view replaces the level's lazy per-table merge with
		// one cursor run; a stale or still-building view falls back to the
		// plain levelIter (and records the miss so the rebuild lag is
		// observable).
		if vw := d.viewFor(lvl, files); vw != nil {
			vi := newViewIter(d, vw, files)
			vi.prof = prof
			children = append(children, vi)
			d.stats.ScanViewHits.Add(1)
			if prof != nil {
				prof.ViewHits++
			}
			continue
		}
		if !d.opts.DisableSortedViews {
			d.stats.ScanViewMisses.Add(1)
			if prof != nil {
				prof.ViewMisses++
			}
		}
		li := newLevelIter(d, files)
		li.prof = prof
		children = append(children, li)
	}
	return &Iterator{db: d, merged: newMergingIter(children...), seq: seq, prof: prof}, nil
}

// NewIteratorSnapshot returns an iterator bound to a snapshot.
func (s *Snapshot) NewIterator() (*Iterator, error) { return s.db.NewIteratorAt(s.seq) }

// First positions at the smallest live key.
func (it *Iterator) First() {
	if it.kids != nil {
		for _, k := range it.kids {
			k.First()
		}
		it.krev = false
		it.kidSettle()
		return
	}
	it.seeks++
	it.merged.First()
	it.settle(nil)
}

// Seek positions at the first live key >= ukey.
func (it *Iterator) Seek(ukey []byte) {
	if it.kids != nil {
		for _, k := range it.kids {
			k.Seek(ukey)
		}
		it.krev = false
		it.kidSettle()
		return
	}
	it.seeks++
	it.merged.SeekGE(keys.MakeSeekKey(nil, ukey, it.seq))
	it.settle(nil)
}

// Next advances to the following live key.
func (it *Iterator) Next() {
	if !it.valid {
		return
	}
	if it.kids != nil {
		if it.krev {
			// Direction switch: reposition every other child to the first
			// key after the current one. Shard keyspaces are disjoint, so
			// Seek(current) on another shard lands strictly past it.
			for i, k := range it.kids {
				if i != it.kcur {
					k.Seek(it.key)
				}
			}
			it.krev = false
		}
		it.kids[it.kcur].Next()
		it.kidSettle()
		return
	}
	prev := append([]byte(nil), it.key...)
	if it.merged.Valid() {
		it.merged.Next()
	} else {
		// The merged iterator was exhausted in the other direction while
		// we still hold a position; re-establish it.
		it.merged.SeekGE(keys.MakeSeekKey(nil, prev, it.seq))
	}
	it.settle(prev)
}

// Last positions at the largest live key.
func (it *Iterator) Last() {
	if it.kids != nil {
		for _, k := range it.kids {
			k.Last()
		}
		it.krev = true
		it.kidSettleReverse()
		return
	}
	it.seeks++
	it.merged.Last()
	it.settleReverse(nil)
}

// SeekForPrev positions at the last live key <= ukey.
func (it *Iterator) SeekForPrev(ukey []byte) {
	if it.kids != nil {
		for _, k := range it.kids {
			k.SeekForPrev(ukey)
		}
		it.krev = true
		it.kidSettleReverse()
		return
	}
	it.seeks++
	// ukey++"\x00" is the immediate successor user key: every entry of
	// ukey itself sorts before it.
	succ := append(append([]byte(nil), ukey...), 0)
	it.merged.SeekLT(keys.MakeSeekKey(nil, succ, keys.MaxSequence))
	it.settleReverse(nil)
}

// Prev moves to the preceding live key.
func (it *Iterator) Prev() {
	if !it.valid {
		return
	}
	if it.kids != nil {
		if !it.krev {
			// Direction switch: reposition every other child to the last
			// key before the current one (disjoint keyspaces make
			// SeekForPrev(current) land strictly before it on other shards).
			for i, k := range it.kids {
				if i != it.kcur {
					k.SeekForPrev(it.key)
				}
			}
			it.krev = true
		}
		it.kids[it.kcur].Prev()
		it.kidSettleReverse()
		return
	}
	bound := append([]byte(nil), it.key...)
	switch {
	case !it.merged.Valid():
		// Exhausted forward while positioned: re-establish backward. The
		// seek key for (bound, MaxSequence) sorts before every entry of
		// bound, so SeekLT lands on the previous user key's entries.
		it.merged.SeekLT(keys.MakeSeekKey(nil, bound, keys.MaxSequence))
	case bytes.Equal(keys.UserKey(it.merged.Key()), bound):
		// Forward positioning leaves the merged iterator ON the yielded
		// entry; step off it (settleReverse skips its other versions).
		it.merged.Prev()
	default:
		// Reverse positioning leaves the merged iterator on the next
		// unprocessed entry already; do not skip it.
	}
	it.settleReverse(bound)
}

// kidSettle picks the smallest-keyed valid child as the facade's current
// entry, copying its key/value so the accessors stay stable until the next
// move regardless of which child moves underneath.
func (it *Iterator) kidSettle() {
	it.valid = false
	it.kcur = -1
	var best []byte
	for i, k := range it.kids {
		if err := k.Err(); err != nil && it.err == nil {
			it.err = err
		}
		if !k.Valid() {
			continue
		}
		if best == nil || bytes.Compare(k.Key(), best) < 0 {
			best = k.Key()
			it.kcur = i
		}
	}
	if it.kcur >= 0 && it.err == nil {
		k := it.kids[it.kcur]
		it.key = append(it.key[:0], k.Key()...)
		it.value = append(it.value[:0], k.Value()...)
		it.valid = true
	}
}

// kidSettleReverse is kidSettle for the reverse direction: largest key wins.
func (it *Iterator) kidSettleReverse() {
	it.valid = false
	it.kcur = -1
	var best []byte
	for i, k := range it.kids {
		if err := k.Err(); err != nil && it.err == nil {
			it.err = err
		}
		if !k.Valid() {
			continue
		}
		if best == nil || bytes.Compare(k.Key(), best) > 0 {
			best = k.Key()
			it.kcur = i
		}
	}
	if it.kcur >= 0 && it.err == nil {
		k := it.kids[it.kcur]
		it.key = append(it.key[:0], k.Key()...)
		it.value = append(it.value[:0], k.Value()...)
		it.valid = true
	}
}

// settle advances the merged iterator until it rests on the newest visible,
// live entry of a user key different from skipKey.
func (it *Iterator) settle(skipKey []byte) {
	it.valid = false
	for it.merged.Valid() {
		ik := it.merged.Key()
		if !keys.Valid(ik) {
			it.err = errors.New("db: invalid internal key in iterator")
			return
		}
		uk := keys.UserKey(ik)
		seq, kind := keys.DecodeTrailer(ik)
		switch {
		case seq > it.seq:
			// Not visible at this snapshot.
		case skipKey != nil && bytes.Equal(uk, skipKey):
			// Older version of a key already yielded (or skipped).
		case kind == keys.KindDelete:
			// Tombstone hides everything older for this key.
			skipKey = append(skipKey[:0], uk...)
		default:
			it.key = append(it.key[:0], uk...)
			it.value = append(it.value[:0], it.merged.Value()...)
			it.valid = true
			it.nkeys++
			return
		}
		it.merged.Next()
	}
	if err := it.merged.Err(); err != nil {
		it.err = err
	}
}

// settleReverse walks the merged iterator backward until it rests on the
// newest visible live entry of the largest user key below the current
// position (skipping boundKey, which was already yielded). Moving backward
// visits a key's versions oldest-first, so the candidate for a key is
// refreshed until the key changes; the final candidate is the newest
// visible version, and a tombstone candidate hides the key entirely.
func (it *Iterator) settleReverse(boundKey []byte) {
	it.valid = false
	var (
		curKey  []byte
		curVal  []byte
		curLive bool
		have    bool
	)
	yield := func() {
		it.key = append(it.key[:0], curKey...)
		it.value = append(it.value[:0], curVal...)
		it.valid = true
		it.nkeys++
	}
	for it.merged.Valid() {
		ik := it.merged.Key()
		if !keys.Valid(ik) {
			it.err = errors.New("db: invalid internal key in iterator")
			return
		}
		uk := keys.UserKey(ik)
		seq, kind := keys.DecodeTrailer(ik)

		if boundKey != nil && bytes.Equal(uk, boundKey) {
			it.merged.Prev()
			continue
		}
		if have && !bytes.Equal(uk, curKey) {
			// Finished the previous key's versions; its candidate is the
			// newest visible one.
			if curLive {
				yield()
				return
			}
			// Tombstone: the key is dead, keep scanning backward.
			have = false
		}
		if seq <= it.seq {
			curKey = append(curKey[:0], uk...)
			curLive = kind == keys.KindSet
			if curLive {
				curVal = append(curVal[:0], it.merged.Value()...)
			}
			have = true
		}
		it.merged.Prev()
	}
	if err := it.merged.Err(); err != nil {
		it.err = err
		return
	}
	if have && curLive {
		yield()
	}
}

// Valid reports whether the iterator is positioned on a live entry.
func (it *Iterator) Valid() bool { return it.valid }

// Key returns the current user key (stable until the next move).
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value (stable until the next move).
func (it *Iterator) Value() []byte { return it.value }

// Err returns the first error encountered.
func (it *Iterator) Err() error { return it.err }

// Close releases table references. Iterators must be closed.
func (it *Iterator) Close() error {
	if it.closed {
		return it.err
	}
	it.closed = true
	it.valid = false
	if it.kids != nil {
		for _, k := range it.kids {
			if err := k.Close(); err != nil && it.err == nil {
				it.err = err
			}
		}
		return it.err
	}
	if err := it.merged.Close(); err != nil && it.err == nil {
		it.err = err
	}
	if it.nkeys > 0 {
		it.db.stats.IterKeys.Add(it.nkeys)
	}
	if it.prof != nil {
		it.db.readAgg.mergeIter(it.prof, it.seeks)
		profilePool.Put(it.prof)
		it.prof = nil
	}
	return it.err
}
