package db

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// waitForDrain blocks until the pending-upload backlog is empty, failing the
// test if it does not drain within timeout.
func waitForDrain(t *testing.T, d *DB, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		n, b := d.PendingCloudTables()
		if n == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pending backlog did not drain: %d tables (%d bytes), breaker=%s",
				n, b, d.BreakerState())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitForDeferredEmpty blocks until the deferred-delete queue is empty.
func waitForDeferredEmpty(t *testing.T, d *DB, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		d.deferredMu.Lock()
		n := len(d.deferred)
		d.deferredMu.Unlock()
		if n == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("deferred-delete queue did not drain: %d entries", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTransientCloudFailureRetried injects a cloud PUT failure that clears
// after two attempts; the flush must succeed via retry.
func TestTransientCloudFailureRetried(t *testing.T) {
	d, _ := openTest(t, PolicyCloudOnly)
	defer d.Close()

	var failures atomic.Int32
	failures.Store(2)
	d.cloudSim.SetFailureHook(func(op, name string) error {
		if op == "PUT" && failures.Load() > 0 {
			failures.Add(-1)
			return errors.New("injected transient PUT failure")
		}
		return nil
	})
	for i := 0; i < 100; i++ {
		mustPut(t, d, fmt.Sprintf("k%04d", i), "v")
	}
	if err := d.Flush(); err != nil {
		t.Fatalf("flush should survive transient cloud failures: %v", err)
	}
	d.cloudSim.SetFailureHook(nil)
	if d.EngineStats().UploadRetries.Load() == 0 {
		t.Fatal("retry counter not incremented")
	}
	for i := 0; i < 100; i++ {
		mustGet(t, d, fmt.Sprintf("k%04d", i), "v")
	}
}

// TestPersistentCloudFailureDegrades verifies a cloud outage that outlasts
// the retries does not fail the flush: the table lands on local storage
// marked pending-upload, reads keep working against the local copy, and the
// drainer migrates the backlog to the cloud once the outage clears.
func TestPersistentCloudFailureDegrades(t *testing.T) {
	d, _ := openTest(t, PolicyCloudOnly)
	defer d.Close()
	d.cloudSim.SetFailureHook(func(op, name string) error {
		if op == "PUT" {
			return errors.New("injected outage")
		}
		return nil
	})
	for i := 0; i < 50; i++ {
		mustPut(t, d, fmt.Sprintf("k%04d", i), "v")
	}
	if err := d.Flush(); err != nil {
		t.Fatalf("flush during an outage must degrade, not fail: %v", err)
	}
	if n, _ := d.PendingCloudTables(); n == 0 {
		t.Fatal("degraded flush left no pending-upload backlog")
	}
	if d.EngineStats().DegradedTables.Load() == 0 {
		t.Fatal("DegradedTables counter not incremented")
	}
	// Reads are served from the locally landed table throughout.
	mustGet(t, d, "k0000", "v")
	mustGet(t, d, "k0049", "v")

	// Outage ends: the drainer probes the breaker shut and migrates the
	// backlog; afterwards every table object lives in the cloud.
	d.cloudSim.SetFailureHook(nil)
	waitForDrain(t, d, 10*time.Second)
	if names, err := d.cloudSim.List("sst/"); err != nil || len(names) == 0 {
		t.Fatalf("drained tables missing from cloud: names=%v err=%v", names, err)
	}
	if d.EngineStats().DrainedTables.Load() == 0 {
		t.Fatal("DrainedTables counter not incremented")
	}
	mustGet(t, d, "k0000", "v")
	mustGet(t, d, "k0049", "v")
}

// TestPersistentCloudFailureStrictMode verifies DisableDegradedMode restores
// the fail-hard contract: a persistent outage surfaces as a flush error and
// the data stays readable from the memtable/WAL side.
func TestPersistentCloudFailureStrictMode(t *testing.T) {
	dir := t.TempDir()
	o := testOptions(PolicyCloudOnly)
	o.DisableDegradedMode = true
	d, err := OpenAt(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.cloudSim.SetFailureHook(func(op, name string) error {
		if op == "PUT" {
			return errors.New("injected outage")
		}
		return nil
	})
	for i := 0; i < 50; i++ {
		mustPut(t, d, fmt.Sprintf("k%04d", i), "v")
	}
	if err := d.Flush(); err == nil {
		t.Fatal("strict-mode flush during a persistent outage should fail")
	}
	// The data is still in the WAL + memtable; reads keep working.
	d.cloudSim.SetFailureHook(nil)
	mustGet(t, d, "k0000", "v")
}
