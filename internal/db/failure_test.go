package db

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestTransientCloudFailureRetried injects a cloud PUT failure that clears
// after two attempts; the flush must succeed via retry.
func TestTransientCloudFailureRetried(t *testing.T) {
	d, _ := openTest(t, PolicyCloudOnly)
	defer d.Close()

	var failures atomic.Int32
	failures.Store(2)
	d.cloudSim.SetFailureHook(func(op, name string) error {
		if op == "PUT" && failures.Load() > 0 {
			failures.Add(-1)
			return errors.New("injected transient PUT failure")
		}
		return nil
	})
	for i := 0; i < 100; i++ {
		mustPut(t, d, fmt.Sprintf("k%04d", i), "v")
	}
	if err := d.Flush(); err != nil {
		t.Fatalf("flush should survive transient cloud failures: %v", err)
	}
	d.cloudSim.SetFailureHook(nil)
	if d.EngineStats().UploadRetries.Load() == 0 {
		t.Fatal("retry counter not incremented")
	}
	for i := 0; i < 100; i++ {
		mustGet(t, d, fmt.Sprintf("k%04d", i), "v")
	}
}

// TestPersistentCloudFailureSurfaces verifies a cloud outage that outlasts
// the retries is reported as a flush error, not silently swallowed, and
// that the data stays readable from the memtable/WAL side.
func TestPersistentCloudFailureSurfaces(t *testing.T) {
	d, _ := openTest(t, PolicyCloudOnly)
	defer d.Close()
	d.cloudSim.SetFailureHook(func(op, name string) error {
		if op == "PUT" {
			return errors.New("injected outage")
		}
		return nil
	})
	for i := 0; i < 50; i++ {
		mustPut(t, d, fmt.Sprintf("k%04d", i), "v")
	}
	if err := d.Flush(); err == nil {
		t.Fatal("flush during a persistent outage should fail")
	}
	// The data is still in the WAL + memtable; reads keep working.
	d.cloudSim.SetFailureHook(nil)
	mustGet(t, d, "k0000", "v")
}
