// Package block implements the key/value block format shared by SSTable
// data and index blocks. Entries are prefix-compressed against the previous
// key, with periodic restart points for binary search:
//
//	entry:   varint(shared) varint(unshared) varint(valueLen) keyDelta value
//	trailer: restartOffset*uint32 ... restartCount uint32
//
// Keys within a block must be added in strictly increasing internal-key
// order.
package block

import (
	"encoding/binary"
	"errors"

	"rocksmash/internal/keys"
)

// ErrCorrupt reports a structurally invalid block.
var ErrCorrupt = errors.New("block: corrupt entry")

// Builder assembles a block.
type Builder struct {
	buf             []byte
	restarts        []uint32
	restartInterval int
	counter         int
	lastKey         []byte
	n               int
}

// NewBuilder returns a builder that writes a restart point every
// restartInterval entries (16 is the conventional default).
func NewBuilder(restartInterval int) *Builder {
	if restartInterval < 1 {
		restartInterval = 1
	}
	return &Builder{restartInterval: restartInterval, restarts: []uint32{0}}
}

// Add appends an entry. key must sort after every previously added key.
func (b *Builder) Add(key, value []byte) {
	shared := 0
	if b.counter < b.restartInterval {
		n := len(b.lastKey)
		if len(key) < n {
			n = len(key)
		}
		for shared < n && b.lastKey[shared] == key[shared] {
			shared++
		}
	} else {
		b.restarts = append(b.restarts, uint32(len(b.buf)))
		b.counter = 0
	}
	b.buf = binary.AppendUvarint(b.buf, uint64(shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(key)-shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(value)))
	b.buf = append(b.buf, key[shared:]...)
	b.buf = append(b.buf, value...)

	b.lastKey = append(b.lastKey[:0], key...)
	b.counter++
	b.n++
}

// Count returns the number of entries added.
func (b *Builder) Count() int { return b.n }

// EstimatedSize returns the size the finished block will have.
func (b *Builder) EstimatedSize() int {
	return len(b.buf) + 4*len(b.restarts) + 4
}

// Empty reports whether no entries were added.
func (b *Builder) Empty() bool { return b.n == 0 }

// Finish appends the restart trailer and returns the encoded block. The
// builder must not be reused afterwards except via Reset.
func (b *Builder) Finish() []byte {
	for _, r := range b.restarts {
		b.buf = binary.LittleEndian.AppendUint32(b.buf, r)
	}
	b.buf = binary.LittleEndian.AppendUint32(b.buf, uint32(len(b.restarts)))
	return b.buf
}

// Reset clears the builder for reuse.
func (b *Builder) Reset() {
	b.buf = b.buf[:0]
	b.restarts = b.restarts[:1]
	b.restarts[0] = 0
	b.counter = 0
	b.lastKey = b.lastKey[:0]
	b.n = 0
}

// Reader provides random and sequential access to a finished block.
type Reader struct {
	data     []byte // entry region only
	restarts []uint32
}

// NewReader parses an encoded block.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < 4 {
		return nil, ErrCorrupt
	}
	n := binary.LittleEndian.Uint32(data[len(data)-4:])
	trailer := 4 * (int(n) + 1)
	if n == 0 || trailer > len(data) {
		return nil, ErrCorrupt
	}
	restartStart := len(data) - trailer
	restarts := make([]uint32, n)
	for i := range restarts {
		restarts[i] = binary.LittleEndian.Uint32(data[restartStart+4*i:])
		if int(restarts[i]) > restartStart {
			return nil, ErrCorrupt
		}
	}
	return &Reader{data: data[:restartStart], restarts: restarts}, nil
}

// Iter iterates the entries of one block.
type Iter struct {
	r      *Reader
	off    int // offset of current entry
	next   int // offset just past current entry
	key    []byte
	value  []byte
	valid  bool
	err    error
	restIx int // restart index at or before the current entry
}

// NewIter returns an unpositioned iterator over the block.
func (r *Reader) NewIter() *Iter { return &Iter{r: r} }

// decodeAt decodes the entry at offset off, using it.key as the shared
// prefix source, and advances the iterator state.
func (it *Iter) decodeAt(off int) bool {
	data := it.r.data
	if off >= len(data) {
		it.valid = false
		return false
	}
	shared, n1 := binary.Uvarint(data[off:])
	if n1 <= 0 {
		it.fail()
		return false
	}
	unshared, n2 := binary.Uvarint(data[off+n1:])
	if n2 <= 0 {
		it.fail()
		return false
	}
	vlen, n3 := binary.Uvarint(data[off+n1+n2:])
	if n3 <= 0 {
		it.fail()
		return false
	}
	p := off + n1 + n2 + n3
	if int(shared) > len(it.key) || p+int(unshared)+int(vlen) > len(data) {
		it.fail()
		return false
	}
	it.key = append(it.key[:int(shared)], data[p:p+int(unshared)]...)
	it.value = data[p+int(unshared) : p+int(unshared)+int(vlen)]
	it.off = off
	it.next = p + int(unshared) + int(vlen)
	it.valid = true
	return true
}

func (it *Iter) fail() {
	it.valid = false
	it.err = ErrCorrupt
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iter) Valid() bool { return it.valid }

// Err returns the first corruption error encountered, if any.
func (it *Iter) Err() error { return it.err }

// Key returns the current full key. The slice is reused by Next/Seek calls.
func (it *Iter) Key() []byte { return it.key }

// Value returns the current value, aliasing the block's buffer.
func (it *Iter) Value() []byte { return it.value }

// First positions at the first entry.
func (it *Iter) First() {
	it.key = it.key[:0]
	it.restIx = 0
	it.decodeAt(0)
}

// Next advances to the following entry.
func (it *Iter) Next() {
	if !it.valid {
		return
	}
	if it.restIx+1 < len(it.r.restarts) && it.next >= int(it.r.restarts[it.restIx+1]) {
		it.restIx++
	}
	it.decodeAt(it.next)
}

// SeekGE positions at the first entry with key >= target in internal-key
// order.
func (it *Iter) SeekGE(target []byte) {
	// Binary search restart points for the last restart whose key < target.
	lo, hi := 0, len(it.r.restarts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		k, ok := it.r.restartKey(mid)
		if !ok {
			it.fail()
			return
		}
		if keys.Compare(k, target) < 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	it.restIx = lo
	it.key = it.key[:0]
	if !it.decodeAt(int(it.r.restarts[lo])) {
		return
	}
	for it.valid && keys.Compare(it.key, target) < 0 {
		it.Next()
	}
}

// SeekLT positions at the last entry with key < target, or invalidates.
func (it *Iter) SeekLT(target []byte) {
	// Scan forward remembering the last entry < target. Blocks are small,
	// so the linear fallback after the restart search is acceptable.
	lo, hi := 0, len(it.r.restarts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		k, ok := it.r.restartKey(mid)
		if !ok {
			it.fail()
			return
		}
		if keys.Compare(k, target) < 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	it.restIx = lo
	it.key = it.key[:0]
	if !it.decodeAt(int(it.r.restarts[lo])) {
		return
	}
	if keys.Compare(it.key, target) >= 0 {
		it.valid = false
		return
	}
	for {
		prevOff := it.off
		prevRest := it.restIx
		it.Next()
		if !it.valid || keys.Compare(it.key, target) >= 0 {
			it.key = it.key[:0]
			it.restIx = prevRest
			// Re-decode from the restart to rebuild the prefix chain.
			it.replayTo(prevOff)
			return
		}
	}
}

// Last positions at the final entry.
func (it *Iter) Last() {
	it.restIx = len(it.r.restarts) - 1
	it.key = it.key[:0]
	if !it.decodeAt(int(it.r.restarts[it.restIx])) {
		return
	}
	for it.next < len(it.r.data) {
		if !it.decodeAt(it.next) {
			return
		}
	}
}

// Prev moves to the previous entry by replaying from the nearest restart.
func (it *Iter) Prev() {
	if !it.valid {
		return
	}
	target := it.off
	if target == 0 {
		it.valid = false
		return
	}
	// Find restart strictly before the current entry.
	ri := it.restIx
	if int(it.r.restarts[ri]) >= target {
		ri--
		if ri < 0 {
			it.valid = false
			return
		}
	}
	it.restIx = ri
	it.key = it.key[:0]
	if !it.decodeAt(int(it.r.restarts[ri])) {
		return
	}
	for it.next < target {
		if !it.decodeAt(it.next) {
			return
		}
		if it.restIx+1 < len(it.r.restarts) && it.off >= int(it.r.restarts[it.restIx+1]) {
			it.restIx++
		}
	}
}

// replayTo re-decodes entries from the current restart point up to and
// including the entry at offset target.
func (it *Iter) replayTo(target int) {
	if !it.decodeAt(int(it.r.restarts[it.restIx])) {
		return
	}
	for it.off < target {
		if !it.decodeAt(it.next) {
			return
		}
	}
}

// restartKey decodes the full key stored at restart index i (restart entries
// always have shared == 0).
func (r *Reader) restartKey(i int) ([]byte, bool) {
	off := int(r.restarts[i])
	data := r.data
	if off >= len(data) {
		return nil, false
	}
	shared, n1 := binary.Uvarint(data[off:])
	if n1 <= 0 || shared != 0 {
		return nil, false
	}
	unshared, n2 := binary.Uvarint(data[off+n1:])
	if n2 <= 0 {
		return nil, false
	}
	_, n3 := binary.Uvarint(data[off+n1+n2:])
	if n3 <= 0 {
		return nil, false
	}
	p := off + n1 + n2 + n3
	if p+int(unshared) > len(data) {
		return nil, false
	}
	return data[p : p+int(unshared)], true
}
