package block

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rocksmash/internal/keys"
)

func ik(k string, seq uint64) []byte {
	return keys.MakeInternalKey(nil, []byte(k), seq, keys.KindSet)
}

func buildBlock(t *testing.T, entries [][2]string, restartInterval int) *Reader {
	t.Helper()
	b := NewBuilder(restartInterval)
	for i, e := range entries {
		b.Add(ik(e[0], uint64(1000-i)), []byte(e[1]))
	}
	r, err := NewReader(b.Finish())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRoundTripSequential(t *testing.T) {
	var entries [][2]string
	for i := 0; i < 100; i++ {
		entries = append(entries, [2]string{fmt.Sprintf("key%04d", i), fmt.Sprintf("val%d", i)})
	}
	for _, ri := range []int{1, 2, 16, 1000} {
		r := buildBlock(t, entries, ri)
		it := r.NewIter()
		it.First()
		for i := 0; i < len(entries); i++ {
			if !it.Valid() {
				t.Fatalf("ri=%d: exhausted at %d", ri, i)
			}
			if got := string(keys.UserKey(it.Key())); got != entries[i][0] {
				t.Fatalf("ri=%d: key %d = %q want %q", ri, i, got, entries[i][0])
			}
			if got := string(it.Value()); got != entries[i][1] {
				t.Fatalf("ri=%d: value %d = %q", ri, i, got)
			}
			it.Next()
		}
		if it.Valid() {
			t.Fatalf("ri=%d: extra entries", ri)
		}
		if it.Err() != nil {
			t.Fatalf("ri=%d: err %v", ri, it.Err())
		}
	}
}

func TestSeekGE(t *testing.T) {
	var entries [][2]string
	for i := 0; i < 50; i += 2 {
		entries = append(entries, [2]string{fmt.Sprintf("k%03d", i), "v"})
	}
	r := buildBlock(t, entries, 4)
	it := r.NewIter()

	it.SeekGE(keys.MakeSeekKey(nil, []byte("k007"), keys.MaxSequence))
	if !it.Valid() || string(keys.UserKey(it.Key())) != "k008" {
		t.Fatalf("seek k007 landed wrong")
	}
	it.SeekGE(keys.MakeSeekKey(nil, []byte("k000"), keys.MaxSequence))
	if !it.Valid() || string(keys.UserKey(it.Key())) != "k000" {
		t.Fatal("seek first failed")
	}
	it.SeekGE(keys.MakeSeekKey(nil, []byte("zzz"), keys.MaxSequence))
	if it.Valid() {
		t.Fatal("seek past end should invalidate")
	}
}

func TestSeekLT(t *testing.T) {
	entries := [][2]string{{"a", "1"}, {"c", "2"}, {"e", "3"}, {"g", "4"}}
	r := buildBlock(t, entries, 2)
	it := r.NewIter()

	it.SeekLT(ik("d", keys.MaxSequence))
	if !it.Valid() || string(keys.UserKey(it.Key())) != "c" {
		t.Fatalf("SeekLT(d) got valid=%v", it.Valid())
	}
	it.SeekLT(ik("a", keys.MaxSequence))
	if it.Valid() {
		t.Fatal("SeekLT before first should invalidate")
	}
	it.SeekLT(ik("zzz", 0))
	if !it.Valid() || string(keys.UserKey(it.Key())) != "g" {
		t.Fatal("SeekLT(zzz) should land on last")
	}
}

func TestLastAndPrev(t *testing.T) {
	entries := [][2]string{{"a", "1"}, {"b", "2"}, {"c", "3"}, {"d", "4"}, {"e", "5"}}
	r := buildBlock(t, entries, 2)
	it := r.NewIter()
	it.Last()
	var got []string
	for it.Valid() {
		got = append(got, string(keys.UserKey(it.Key())))
		it.Prev()
	}
	want := "e d c b a"
	if g := fmt.Sprint(got); g != "["+want+"]" {
		t.Fatalf("reverse walk = %v", got)
	}
}

func TestEmptyishBlockRejected(t *testing.T) {
	if _, err := NewReader(nil); err == nil {
		t.Fatal("nil block should fail")
	}
	if _, err := NewReader([]byte{0, 0, 0}); err == nil {
		t.Fatal("short block should fail")
	}
}

func TestCorruptRestartCount(t *testing.T) {
	b := NewBuilder(16)
	b.Add(ik("a", 1), []byte("v"))
	data := b.Finish()
	// Claim an absurd restart count.
	data[len(data)-1] = 0xff
	if _, err := NewReader(data); err == nil {
		t.Fatal("corrupt restart count should fail")
	}
}

func TestEstimatedSize(t *testing.T) {
	b := NewBuilder(16)
	if b.EstimatedSize() < 8 {
		t.Fatal("even empty block has trailer overhead")
	}
	before := b.EstimatedSize()
	b.Add(ik("key", 1), bytes.Repeat([]byte("v"), 100))
	if b.EstimatedSize() <= before+100 {
		t.Fatal("estimated size should include entry bytes")
	}
	got := b.EstimatedSize()
	if got != len(b.Finish()) {
		t.Fatalf("estimate %d != actual %d", got, len(b.Finish()))
	}
}

func TestBuilderReset(t *testing.T) {
	b := NewBuilder(4)
	b.Add(ik("x", 1), []byte("1"))
	b.Reset()
	if !b.Empty() || b.Count() != 0 {
		t.Fatal("reset should clear builder")
	}
	b.Add(ik("a", 1), []byte("2"))
	r, err := NewReader(b.Finish())
	if err != nil {
		t.Fatal(err)
	}
	it := r.NewIter()
	it.First()
	if !it.Valid() || string(keys.UserKey(it.Key())) != "a" {
		t.Fatal("block after reset is wrong")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8, restartInterval uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := map[string]string{}
		for i := 0; i < int(n); i++ {
			m[fmt.Sprintf("k%04d", rng.Intn(1000))] = fmt.Sprint(rng.Int63())
		}
		var ks []string
		for k := range m {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		if len(ks) == 0 {
			return true
		}
		b := NewBuilder(int(restartInterval%20) + 1)
		for i, k := range ks {
			b.Add(ik(k, uint64(10000-i)), []byte(m[k]))
		}
		r, err := NewReader(b.Finish())
		if err != nil {
			return false
		}
		// Every key must be findable by SeekGE and carry the right value.
		it := r.NewIter()
		for _, k := range ks {
			it.SeekGE(keys.MakeSeekKey(nil, []byte(k), keys.MaxSequence))
			if !it.Valid() || string(keys.UserKey(it.Key())) != k || string(it.Value()) != m[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSharedPrefixCompression(t *testing.T) {
	// Keys with long shared prefixes should compress well.
	b1 := NewBuilder(16)
	b2 := NewBuilder(1) // no sharing
	prefix := bytes.Repeat([]byte("p"), 64)
	for i := 0; i < 64; i++ {
		k := keys.MakeInternalKey(nil, append(append([]byte{}, prefix...), byte(i)), 1, keys.KindSet)
		b1.Add(k, []byte("v"))
		b2.Add(k, []byte("v"))
	}
	if len(b1.Finish()) >= len(b2.Finish()) {
		t.Fatal("prefix compression should shrink the block")
	}
}
