package block

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rocksmash/internal/keys"
)

// TestQuickSeekLTMatchesLinearScan checks SeekLT against the obvious
// linear-scan definition for random blocks and targets.
func TestQuickSeekLTMatchesLinearScan(t *testing.T) {
	f := func(seed int64, n uint8, restartInterval uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		uniq := map[string]bool{}
		for i := 0; i < int(n%60)+2; i++ {
			uniq[fmt.Sprintf("k%03d", rng.Intn(200))] = true
		}
		var ks []string
		for k := range uniq {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		b := NewBuilder(int(restartInterval%8) + 1)
		var ikeys [][]byte
		for i, k := range ks {
			ik := keys.MakeInternalKey(nil, []byte(k), uint64(1000-i), keys.KindSet)
			b.Add(ik, []byte("v"))
			ikeys = append(ikeys, ik)
		}
		r, err := NewReader(b.Finish())
		if err != nil {
			return false
		}
		it := r.NewIter()
		for trial := 0; trial < 30; trial++ {
			target := keys.MakeSeekKey(nil, []byte(fmt.Sprintf("k%03d", rng.Intn(220))), keys.MaxSequence)
			it.SeekLT(target)
			// Linear reference: last ikey < target.
			wantIdx := -1
			for i, ik := range ikeys {
				if keys.Compare(ik, target) < 0 {
					wantIdx = i
				}
			}
			if wantIdx == -1 {
				if it.Valid() {
					return false
				}
				continue
			}
			if !it.Valid() || keys.Compare(it.Key(), ikeys[wantIdx]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPrevIsInverseOfNext walks forward recording positions, then
// verifies Prev retraces them exactly from the end.
func TestQuickPrevIsInverseOfNext(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(4)
		count := int(n%40) + 2
		for i := 0; i < count; i++ {
			ik := keys.MakeInternalKey(nil, []byte(fmt.Sprintf("key%04d", i*3)), uint64(rng.Intn(100)+1), keys.KindSet)
			b.Add(ik, []byte(fmt.Sprint(i)))
		}
		r, err := NewReader(b.Finish())
		if err != nil {
			return false
		}
		it := r.NewIter()
		var forward []string
		for it.First(); it.Valid(); it.Next() {
			forward = append(forward, string(it.Key()))
		}
		it.Last()
		for i := len(forward) - 1; i >= 0; i-- {
			if !it.Valid() || string(it.Key()) != forward[i] {
				return false
			}
			it.Prev()
		}
		return !it.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
