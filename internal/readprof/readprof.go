// Package readprof defines the request-scoped read-path profile: a small,
// allocation-free context that travels with one Get (or iterator) through
// the read stack — memtables, per-level table probes, bloom filters, and
// the block-fetch hierarchy — recording where the read was served from and
// what it cost. It is the engine's analogue of RocksDB's PerfContext /
// IOStatsContext, specialized for the paper's placement question: which
// tier (block cache, persistent cache, local disk, cloud) produced each
// block, and at which LSM level the key was found.
//
// The package is a leaf: it imports nothing from the engine, so every layer
// of the read stack (db, sstable) can thread a *Profile without import
// cycles. A nil *Profile disables all recording (the fast path); the Timed
// flag additionally gates per-stage clock reads, so unsampled requests pay
// only counter increments.
package readprof

import (
	"fmt"
	"strings"
)

// Tier identifies where a data block was served from, ordered from cheapest
// to most expensive source.
type Tier uint8

// Block-source tiers. NumTiers sizes the per-tier arrays in Profile.
const (
	TierBlockCache Tier = iota // in-memory block cache hit
	TierPCache                 // persistent-cache hit (local disk)
	TierLocal                  // local-tier table file read
	TierCloud                  // cloud GET (single block or readahead span)
	NumTiers       = 4
)

// String names the tier for reports and metric labels.
func (t Tier) String() string {
	switch t {
	case TierBlockCache:
		return "block-cache"
	case TierPCache:
		return "pcache"
	case TierLocal:
		return "local"
	case TierCloud:
		return "cloud"
	default:
		return "unknown"
	}
}

// MaxLevels bounds the LSM levels a Profile can attribute (the level-probe
// bitmask is a byte). It must be >= manifest.NumLevels.
const MaxLevels = 8

// LevelServed sentinels: reads answered above the table stack, or not at
// all. Real level numbers are >= 0.
const (
	// LevelMemtable marks a Get served by a memtable (active, sealed, or
	// WAL-recovered).
	LevelMemtable int8 = -1
	// LevelNone marks a Get that found nothing anywhere (ErrNotFound) or
	// failed before resolving.
	LevelNone int8 = -2
)

// Profile accumulates one request's read-path attribution. The zero value
// is NOT ready to use (LevelServed would read as level 0); obtain one with
// New or call Reset first.
type Profile struct {
	// Timed gates per-stage clock reads: sampled requests time each block
	// fetch and the whole Get, unsampled ones only count.
	Timed bool
	// LevelMask is a bitmask of SST levels probed (bit l = level l had a
	// table whose key range contained the key). The memtable probe is
	// implicit: every Get consults it, so LevelsProbed adds one.
	LevelMask uint8
	// LevelServed is the level that resolved the key (tombstones included),
	// LevelMemtable for memtable hits, or LevelNone.
	LevelServed int8
	// Tables counts table readers consulted (bloom-rejected probes included).
	Tables int32
	// BloomChecked counts bloom filters consulted; BloomNegative counts
	// filters that rejected the key (true negatives, since a matching key
	// can never be rejected).
	BloomChecked  int32
	BloomNegative int32
	// Blocks, Bytes, and FetchNanos break block reads down by source tier.
	// FetchNanos is populated only when Timed.
	Blocks     [NumTiers]int32
	Bytes      [NumTiers]int64
	FetchNanos [NumTiers]int64
	// TotalNanos is the whole request's wall time (populated when Timed).
	TotalNanos int64
	// ViewHits / ViewMisses count, per iterator construction, the LSM
	// levels served by a sorted-view cursor run vs levels that fell back
	// to the per-table merge. Unused on point Gets.
	ViewHits   int32
	ViewMisses int32
}

// New returns a reset Profile.
func New() *Profile {
	p := &Profile{}
	p.Reset()
	return p
}

// Reset clears the profile for reuse.
func (p *Profile) Reset() {
	*p = Profile{LevelServed: LevelNone}
}

// ProbeLevel records that level's tables were consulted for the key.
func (p *Profile) ProbeLevel(level int) {
	if level >= 0 && level < MaxLevels {
		p.LevelMask |= 1 << uint(level)
	}
}

// Probed reports whether level was consulted.
func (p *Profile) Probed(level int) bool {
	return level >= 0 && level < MaxLevels && p.LevelMask&(1<<uint(level)) != 0
}

// LevelsProbed counts distinct levels consulted, including the implicit
// memtable probe — so it is always >= 1 for a completed Get.
func (p *Profile) LevelsProbed() int {
	n := 1 // memtable
	for m := p.LevelMask; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// Block records one block read of n bytes served by tier t. nanos may be 0
// for untimed requests.
func (p *Profile) Block(t Tier, n int, nanos int64) {
	p.Blocks[t]++
	p.Bytes[t] += int64(n)
	p.FetchNanos[t] += nanos
}

// BlocksTotal sums block reads across tiers.
func (p *Profile) BlocksTotal() int {
	var n int32
	for _, b := range p.Blocks {
		n += b
	}
	return int(n)
}

// BytesTotal sums block bytes across tiers.
func (p *Profile) BytesTotal() int64 {
	var n int64
	for _, b := range p.Bytes {
		n += b
	}
	return n
}

// Path renders where the read resolved and which tiers fed it, e.g. "mem",
// "L0:block-cache", "L3:pcache+cloud", "none". It allocates; use it only on
// the reporting path.
func (p *Profile) Path() string {
	var head string
	switch {
	case p.LevelServed == LevelMemtable:
		return "mem"
	case p.LevelServed == LevelNone:
		head = "none"
	default:
		head = fmt.Sprintf("L%d", p.LevelServed)
	}
	var tiers []string
	for t := Tier(0); t < NumTiers; t++ {
		if p.Blocks[t] > 0 {
			tiers = append(tiers, t.String())
		}
	}
	if len(tiers) == 0 {
		return head
	}
	return head + ":" + strings.Join(tiers, "+")
}
