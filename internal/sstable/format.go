// Package sstable implements the sorted-string-table file format:
//
//	[data block]*
//	[filter block]      bloom filter over user keys
//	[index block]       separator key -> data block handle
//	[properties block]  table statistics
//	[footer]            fixed-size: filter/index/properties handles + magic
//
// Every block is followed by a 5-byte trailer (compression type byte +
// crc32c). Blocks use the prefix-compressed format from internal/block.
package sstable

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"rocksmash/internal/storage"
)

const (
	// blockTrailerLen is the compression byte + crc32 suffix on each block.
	blockTrailerLen = 5
	// footerLen is the fixed footer size.
	footerLen = 3*16 + 8
	// tableMagic marks a valid table footer.
	tableMagic = 0x726f636b6d617368 // "rockmash"
)

// Compression selects the per-block compression codec.
type Compression uint8

// Supported codecs. Compressed blocks that fail to shrink are stored raw.
const (
	CompressionNone  Compression = 0
	CompressionFlate Compression = 1
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a malformed or checksum-failing table structure.
var ErrCorrupt = errors.New("sstable: corrupt table")

// Handle locates a block within a table file. Length excludes the trailer.
type Handle struct {
	Offset uint64
	Length uint64
}

// EncodeVarint appends the handle in varint form (used in index values).
func (h Handle) EncodeVarint(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, h.Offset)
	return binary.AppendUvarint(dst, h.Length)
}

// DecodeHandle parses a varint-encoded handle.
func DecodeHandle(p []byte) (Handle, error) {
	off, n1 := binary.Uvarint(p)
	if n1 <= 0 {
		return Handle{}, ErrCorrupt
	}
	ln, n2 := binary.Uvarint(p[n1:])
	if n2 <= 0 {
		return Handle{}, ErrCorrupt
	}
	return Handle{Offset: off, Length: ln}, nil
}

type footer struct {
	filter Handle
	index  Handle
	props  Handle
}

func (f footer) encode() []byte {
	buf := make([]byte, footerLen)
	binary.LittleEndian.PutUint64(buf[0:], f.filter.Offset)
	binary.LittleEndian.PutUint64(buf[8:], f.filter.Length)
	binary.LittleEndian.PutUint64(buf[16:], f.index.Offset)
	binary.LittleEndian.PutUint64(buf[24:], f.index.Length)
	binary.LittleEndian.PutUint64(buf[32:], f.props.Offset)
	binary.LittleEndian.PutUint64(buf[40:], f.props.Length)
	binary.LittleEndian.PutUint64(buf[48:], tableMagic)
	return buf
}

func decodeFooter(buf []byte) (footer, error) {
	if len(buf) != footerLen || binary.LittleEndian.Uint64(buf[48:]) != tableMagic {
		return footer{}, fmt.Errorf("%w: bad footer", ErrCorrupt)
	}
	return footer{
		filter: Handle{binary.LittleEndian.Uint64(buf[0:]), binary.LittleEndian.Uint64(buf[8:])},
		index:  Handle{binary.LittleEndian.Uint64(buf[16:]), binary.LittleEndian.Uint64(buf[24:])},
		props:  Handle{binary.LittleEndian.Uint64(buf[32:]), binary.LittleEndian.Uint64(buf[40:])},
	}, nil
}

// Properties summarizes a table's contents; stored in the properties block
// and kept in memory (on the local tier) for every open table.
type Properties struct {
	NumEntries  uint64
	NumDeletes  uint64
	RawKeyBytes uint64
	RawValBytes uint64
	MinSeq      uint64
	MaxSeq      uint64
	Smallest    []byte // smallest internal key
	Largest     []byte // largest internal key
}

func (p Properties) encode() []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, p.NumEntries)
	buf = binary.AppendUvarint(buf, p.NumDeletes)
	buf = binary.AppendUvarint(buf, p.RawKeyBytes)
	buf = binary.AppendUvarint(buf, p.RawValBytes)
	buf = binary.AppendUvarint(buf, p.MinSeq)
	buf = binary.AppendUvarint(buf, p.MaxSeq)
	buf = binary.AppendUvarint(buf, uint64(len(p.Smallest)))
	buf = append(buf, p.Smallest...)
	buf = binary.AppendUvarint(buf, uint64(len(p.Largest)))
	buf = append(buf, p.Largest...)
	return buf
}

func decodeProperties(p []byte) (Properties, error) {
	var props Properties
	fields := []*uint64{
		&props.NumEntries, &props.NumDeletes, &props.RawKeyBytes,
		&props.RawValBytes, &props.MinSeq, &props.MaxSeq,
	}
	for _, f := range fields {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return props, ErrCorrupt
		}
		*f = v
		p = p[n:]
	}
	for _, dst := range []*[]byte{&props.Smallest, &props.Largest} {
		ln, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)-n) < ln {
			return props, ErrCorrupt
		}
		*dst = append([]byte(nil), p[n:n+int(ln)]...)
		p = p[n+int(ln):]
	}
	return props, nil
}

// sealBlock appends the trailer (compression type + crc) to a finished
// block body and returns the full on-disk bytes. With CompressionFlate the
// body is compressed first, falling back to raw storage when compression
// does not shrink it.
func sealBlock(body []byte, codec Compression) []byte {
	typ := byte(CompressionNone)
	out := body
	if codec == CompressionFlate {
		var buf bytes.Buffer
		zw, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err == nil {
			if _, err := zw.Write(body); err == nil && zw.Close() == nil && buf.Len() < len(body) {
				out = buf.Bytes()
				typ = byte(CompressionFlate)
			}
		}
	}
	sealed := append(append([]byte(nil), out...), typ)
	crc := crc32.Checksum(sealed, castagnoli)
	return binary.LittleEndian.AppendUint32(sealed, crc)
}

// VerifyBlock checks a raw on-disk block (body + trailer), decompresses it
// if needed, and returns the logical body.
func VerifyBlock(raw []byte) ([]byte, error) {
	if len(raw) < blockTrailerLen {
		return nil, fmt.Errorf("%w: short block", ErrCorrupt)
	}
	body := raw[:len(raw)-blockTrailerLen]
	want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	got := crc32.Checksum(raw[:len(raw)-4], castagnoli)
	if want != got {
		return nil, fmt.Errorf("%w: block crc mismatch", ErrCorrupt)
	}
	switch Compression(raw[len(raw)-5]) {
	case CompressionNone:
		return body, nil
	case CompressionFlate:
		zr := flate.NewReader(bytes.NewReader(body))
		defer zr.Close()
		out, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("%w: flate: %v", ErrCorrupt, err)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: unknown compression %d", ErrCorrupt, raw[len(raw)-5])
	}
}

// MetaTail reads a table's metadata tail — the contiguous region holding
// the filter, index and properties blocks plus the footer — returning its
// starting offset and contents. Used to rebuild the local metadata sidecar
// for a cloud-resident table.
func MetaTail(f storage.Reader) (tailOff uint64, tail []byte, err error) {
	size := f.Size()
	if size < footerLen {
		return 0, nil, fmt.Errorf("%w: file too small", ErrCorrupt)
	}
	fbuf := make([]byte, footerLen)
	if _, err := f.ReadAt(fbuf, size-footerLen); err != nil && err != io.EOF {
		return 0, nil, err
	}
	ftr, err := decodeFooter(fbuf)
	if err != nil {
		return 0, nil, err
	}
	tailOff = ftr.index.Offset
	if ftr.filter.Length > 0 && ftr.filter.Offset < tailOff {
		tailOff = ftr.filter.Offset
	}
	if ftr.props.Offset < tailOff {
		tailOff = ftr.props.Offset
	}
	tail = make([]byte, uint64(size)-tailOff)
	if _, err := f.ReadAt(tail, int64(tailOff)); err != nil && err != io.EOF {
		return 0, nil, err
	}
	return tailOff, tail, nil
}

// ReadRawBlock fetches handle h (including trailer) from r and verifies it.
func ReadRawBlock(r storage.Reader, h Handle) ([]byte, error) {
	raw := make([]byte, h.Length+blockTrailerLen)
	if _, err := r.ReadAt(raw, int64(h.Offset)); err != nil {
		return nil, err
	}
	return VerifyBlock(raw)
}
