package sstable

import (
	"rocksmash/internal/block"
	"rocksmash/internal/bloom"
	"rocksmash/internal/keys"
	"rocksmash/internal/storage"
)

// BuilderOptions tunes table construction.
type BuilderOptions struct {
	// BlockBytes is the uncompressed data-block size target.
	BlockBytes int
	// RestartInterval is the prefix-compression restart spacing.
	RestartInterval int
	// BloomBitsPerKey sizes the filter block; 0 disables the filter.
	BloomBitsPerKey int
	// Compression is the data-block codec. Metadata blocks (filter,
	// index, properties) are always stored raw: they are read far more
	// often than data blocks and pinned in memory anyway.
	Compression Compression
}

// DefaultBuilderOptions mirrors common RocksDB settings.
func DefaultBuilderOptions() BuilderOptions {
	return BuilderOptions{BlockBytes: 4 << 10, RestartInterval: 16, BloomBitsPerKey: 10}
}

// Builder writes a table to a storage object. Keys must be added in strictly
// increasing internal-key order.
type Builder struct {
	w    storage.Writer
	opts BuilderOptions

	data      *block.Builder
	index     *block.Builder
	offset    uint64
	hashes    []uint32 // bloom hashes of user keys
	pending   []byte   // last key of the flushed block, awaiting separator
	pendingH  Handle
	havePend  bool
	lastKey   []byte
	props     Properties
	numBlocks int
	metaOff   uint64 // file offset where the metadata tail begins
	err       error
}

// NewBuilder starts a table written to w.
func NewBuilder(w storage.Writer, opts BuilderOptions) *Builder {
	if opts.BlockBytes <= 0 {
		opts.BlockBytes = 4 << 10
	}
	if opts.RestartInterval <= 0 {
		opts.RestartInterval = 16
	}
	return &Builder{
		w:     w,
		opts:  opts,
		data:  block.NewBuilder(opts.RestartInterval),
		index: block.NewBuilder(1),
	}
}

// Add appends one entry.
func (b *Builder) Add(ikey, value []byte) error {
	if b.err != nil {
		return b.err
	}
	if b.havePend {
		// Use a short separator between the last key of the previous block
		// and the first key of this one.
		sep := keys.Separator(b.pending, ikey)
		b.index.Add(sep, b.pendingH.EncodeVarint(nil))
		b.havePend = false
	}
	b.data.Add(ikey, value)
	if b.opts.BloomBitsPerKey > 0 {
		b.hashes = append(b.hashes, bloom.Hash(keys.UserKey(ikey)))
	}
	seq, kind := keys.DecodeTrailer(ikey)
	if b.props.NumEntries == 0 {
		b.props.Smallest = append([]byte(nil), ikey...)
		b.props.MinSeq = seq
		b.props.MaxSeq = seq
	}
	if seq < b.props.MinSeq {
		b.props.MinSeq = seq
	}
	if seq > b.props.MaxSeq {
		b.props.MaxSeq = seq
	}
	b.props.NumEntries++
	if kind == keys.KindDelete {
		b.props.NumDeletes++
	}
	b.props.RawKeyBytes += uint64(len(ikey))
	b.props.RawValBytes += uint64(len(value))
	b.lastKey = append(b.lastKey[:0], ikey...)

	if b.data.EstimatedSize() >= b.opts.BlockBytes {
		b.flushDataBlock()
	}
	return b.err
}

func (b *Builder) flushDataBlock() {
	if b.data.Empty() || b.err != nil {
		return
	}
	h, err := b.writeBlock(b.data.Finish(), b.opts.Compression)
	if err != nil {
		b.err = err
		return
	}
	b.data.Reset()
	b.pending = append(b.pending[:0], b.lastKey...)
	b.pendingH = h
	b.havePend = true
	b.numBlocks++
}

func (b *Builder) writeBlock(body []byte, codec Compression) (Handle, error) {
	sealed := sealBlock(body, codec)
	h := Handle{Offset: b.offset, Length: uint64(len(sealed) - blockTrailerLen)}
	if _, err := b.w.Write(sealed); err != nil {
		return Handle{}, err
	}
	b.offset += uint64(len(sealed))
	return h, nil
}

// EstimatedSize returns the bytes written so far plus the open block.
func (b *Builder) EstimatedSize() uint64 {
	return b.offset + uint64(b.data.EstimatedSize())
}

// NumEntries returns how many entries have been added.
func (b *Builder) NumEntries() uint64 { return b.props.NumEntries }

// MetaOffset returns the file offset where the metadata tail (filter,
// index, properties, footer) begins. Valid after Finish.
func (b *Builder) MetaOffset() uint64 { return b.metaOff }

// Finish flushes remaining blocks, writes filter/index/properties/footer and
// syncs the object. The caller still owns closing the storage.Writer.
func (b *Builder) Finish() (Properties, error) {
	if b.err != nil {
		return Properties{}, b.err
	}
	b.flushDataBlock()
	if b.havePend {
		suc := keys.Successor(b.pending)
		b.index.Add(suc, b.pendingH.EncodeVarint(nil))
		b.havePend = false
	}
	b.props.Largest = append([]byte(nil), b.lastKey...)
	// Everything from here on is table metadata (filter, index,
	// properties, footer) — the contiguous tail that the store keeps on
	// local storage even when the data body lives in cloud.
	b.metaOff = b.offset

	var ftr footer
	if b.opts.BloomBitsPerKey > 0 {
		f := bloom.New(b.hashes, b.opts.BloomBitsPerKey)
		h, err := b.writeBlock(f, CompressionNone)
		if err != nil {
			return Properties{}, err
		}
		ftr.filter = h
	}
	h, err := b.writeBlock(b.index.Finish(), CompressionNone)
	if err != nil {
		return Properties{}, err
	}
	ftr.index = h
	h, err = b.writeBlock(b.props.encode(), CompressionNone)
	if err != nil {
		return Properties{}, err
	}
	ftr.props = h
	if _, err := b.w.Write(ftr.encode()); err != nil {
		return Properties{}, err
	}
	if err := b.w.Sync(); err != nil {
		return Properties{}, err
	}
	return b.props, nil
}
