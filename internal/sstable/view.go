package sstable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"rocksmash/internal/keys"
)

// Sorted-view sidecars (REMIX-style). A view is a persisted, globally
// sorted run of block cursors over every table of one LSM level: for each
// data block, the owning member table, the block's handle within that
// table's file, and the index separator bounding the block's keys. Because
// levels >= 1 hold non-overlapping tables sorted by key, concatenating the
// members' index entries in member order yields the level's global key
// order — a scan that rides the view needs one binary search to seek and
// then advances block-to-block with no per-key merge compares, and it
// knows the exact upcoming block schedule across tables, so cloud
// readahead becomes exact rather than heuristic.
//
// Views are derived data: they are rebuilt from the members' pinned index
// blocks alone (no data-block or cloud I/O), so a missing or corrupt view
// object is never an error — the reader falls back to the plain per-table
// merge and the builder re-emits the sidecar in the background.

// ViewEntry is one cursor of a sorted view: the data block at H inside
// member table Members[Member], holding keys bounded above by Sep (the
// table's index separator, an internal key).
type ViewEntry struct {
	Member int32
	H      Handle
	Sep    []byte
}

// View is the decoded sorted-view sidecar for one level.
type View struct {
	Level   int
	Members []uint64 // member table file numbers, in key order
	Entries []ViewEntry
}

// viewMagic brands the sidecar encoding; bump the suffix on format change.
const viewMagic = "rmviewv1"

// Seek returns the ordinal of the first entry whose separator is >= target
// (an internal key), i.e. the first block that may contain target.
// Returns len(v.Entries) when target is beyond every separator.
func (v *View) Seek(target []byte) int {
	return sort.Search(len(v.Entries), func(i int) bool {
		return keys.Compare(v.Entries[i].Sep, target) >= 0
	})
}

// EncodeView serializes the view: magic, level, member table numbers, then
// the cursor run with delta-encoded offsets (consecutive blocks of one
// member are physically adjacent, so the common delta is zero) and
// prefix-compressed separators, sealed by a crc32c of everything prior.
func EncodeView(v *View) []byte {
	buf := append([]byte(nil), viewMagic...)
	buf = binary.AppendUvarint(buf, uint64(v.Level))
	buf = binary.AppendUvarint(buf, uint64(len(v.Members)))
	for _, num := range v.Members {
		buf = binary.AppendUvarint(buf, num)
	}
	buf = binary.AppendUvarint(buf, uint64(len(v.Entries)))
	var prevSep []byte
	prevMember := int32(-1)
	var prevEnd uint64
	for i := range v.Entries {
		e := &v.Entries[i]
		buf = binary.AppendUvarint(buf, uint64(e.Member-prevMember))
		if e.Member != prevMember {
			// First block of a member: absolute offset.
			buf = binary.AppendUvarint(buf, e.H.Offset)
		} else {
			buf = binary.AppendUvarint(buf, e.H.Offset-prevEnd)
		}
		buf = binary.AppendUvarint(buf, e.H.Length)
		shared := sharedPrefix(prevSep, e.Sep)
		buf = binary.AppendUvarint(buf, uint64(shared))
		buf = binary.AppendUvarint(buf, uint64(len(e.Sep)-shared))
		buf = append(buf, e.Sep[shared:]...)
		prevSep = e.Sep
		prevMember = e.Member
		prevEnd = e.H.End()
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], checksum(buf))
	return append(buf, crc[:]...)
}

// DecodeView parses an encoded view, validating the magic and checksum.
// Any damage yields an error wrapping ErrCorrupt; callers treat that as
// "no view" and rebuild.
func DecodeView(data []byte) (*View, error) {
	if len(data) < len(viewMagic)+4 || string(data[:len(viewMagic)]) != viewMagic {
		return nil, fmt.Errorf("%w: bad view magic", ErrCorrupt)
	}
	body, crc := data[:len(data)-4], data[len(data)-4:]
	if binary.LittleEndian.Uint32(crc) != checksum(body) {
		return nil, fmt.Errorf("%w: view checksum mismatch", ErrCorrupt)
	}
	p := body[len(viewMagic):]
	next := func() (uint64, error) {
		x, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, fmt.Errorf("%w: truncated view varint", ErrCorrupt)
		}
		p = p[n:]
		return x, nil
	}
	level, err := next()
	if err != nil {
		return nil, err
	}
	nMembers, err := next()
	if err != nil {
		return nil, err
	}
	if nMembers > uint64(len(p)) {
		return nil, fmt.Errorf("%w: view member count %d", ErrCorrupt, nMembers)
	}
	v := &View{Level: int(level), Members: make([]uint64, nMembers)}
	for i := range v.Members {
		if v.Members[i], err = next(); err != nil {
			return nil, err
		}
	}
	nEntries, err := next()
	if err != nil {
		return nil, err
	}
	if nEntries > uint64(len(p)) {
		return nil, fmt.Errorf("%w: view entry count %d", ErrCorrupt, nEntries)
	}
	v.Entries = make([]ViewEntry, nEntries)
	var prevSep []byte
	prevMember := int32(-1)
	var prevEnd uint64
	for i := range v.Entries {
		e := &v.Entries[i]
		md, err := next()
		if err != nil {
			return nil, err
		}
		e.Member = prevMember + int32(md)
		if int(e.Member) >= len(v.Members) || e.Member < 0 {
			return nil, fmt.Errorf("%w: view member index %d", ErrCorrupt, e.Member)
		}
		off, err := next()
		if err != nil {
			return nil, err
		}
		if e.Member == prevMember {
			off += prevEnd
		}
		length, err := next()
		if err != nil {
			return nil, err
		}
		e.H = Handle{Offset: off, Length: length}
		shared, err := next()
		if err != nil {
			return nil, err
		}
		unshared, err := next()
		if err != nil {
			return nil, err
		}
		if shared > uint64(len(prevSep)) || unshared > uint64(len(p)) {
			return nil, fmt.Errorf("%w: view separator lengths", ErrCorrupt)
		}
		sep := make([]byte, 0, shared+unshared)
		sep = append(sep, prevSep[:shared]...)
		sep = append(sep, p[:unshared]...)
		p = p[unshared:]
		e.Sep = sep
		prevSep = sep
		prevMember = e.Member
		prevEnd = e.H.End()
	}
	return v, nil
}

// BuildView assembles a level's view from its members' index entries, in
// member (key) order. members[i] owns indexes[i].
//
// A table writer's final index separator is a short successor of the
// table's largest key and may overshoot arbitrarily far past it — past the
// next member's entire key range — which would break the run's global
// separator order. uppers[i], when non-nil, is member i's largest internal
// key; the member's final separator is clamped to it, the tightest valid
// upper bound for the final block.
func BuildView(level int, members []uint64, indexes [][]IndexEntry, uppers [][]byte) *View {
	v := &View{Level: level, Members: members}
	for mi, idx := range indexes {
		for bi, e := range idx {
			sep := e.Sep
			if bi == len(idx)-1 && uppers != nil && uppers[mi] != nil {
				sep = uppers[mi]
			}
			v.Entries = append(v.Entries, ViewEntry{
				Member: int32(mi),
				H:      e.H,
				Sep:    append([]byte(nil), sep...),
			})
		}
	}
	return v
}

func sharedPrefix(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

func checksum(p []byte) uint32 {
	return crc32.Checksum(p, castagnoli)
}
