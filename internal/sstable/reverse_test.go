package sstable

import (
	"fmt"
	"math/rand"
	"testing"

	"rocksmash/internal/keys"
)

func TestIterLastAndPrev(t *testing.T) {
	be := newLocal(t)
	es := seqEntries(500, 16)
	r, _ := buildTable(t, be, "rev.sst", BuilderOptions{BlockBytes: 256}, es)
	it := r.NewIter()
	i := 499
	for it.Last(); it.Valid(); it.Prev() {
		want := fmt.Sprintf("key%06d", i)
		if got := string(keys.UserKey(it.Key())); got != want {
			t.Fatalf("reverse entry %d = %q want %q", i, got, want)
		}
		i--
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if i != -1 {
		t.Fatalf("reverse scan stopped at %d", i+1)
	}
}

func TestIterSeekLT(t *testing.T) {
	be := newLocal(t)
	var es []entry
	for i := 0; i < 100; i += 2 {
		k := fmt.Sprintf("k%04d", i)
		es = append(es, entry{keys.MakeInternalKey(nil, []byte(k), 1, keys.KindSet), []byte("v")})
	}
	r, _ := buildTable(t, be, "rev2.sst", BuilderOptions{BlockBytes: 128}, es)
	it := r.NewIter()

	it.SeekLT(keys.MakeSeekKey(nil, []byte("k0013"), keys.MaxSequence))
	if !it.Valid() || string(keys.UserKey(it.Key())) != "k0012" {
		t.Fatalf("SeekLT(k0013) = %q valid=%v", it.Key(), it.Valid())
	}
	it.SeekLT(keys.MakeSeekKey(nil, []byte("k0000"), keys.MaxSequence))
	if it.Valid() {
		t.Fatal("SeekLT before first should be invalid")
	}
	it.SeekLT(keys.MakeSeekKey(nil, []byte("zzz"), keys.MaxSequence))
	if !it.Valid() || string(keys.UserKey(it.Key())) != "k0098" {
		t.Fatalf("SeekLT(zzz) = %q", it.Key())
	}
}

func TestIterDirectionMixingWithinTable(t *testing.T) {
	be := newLocal(t)
	es := seqEntries(200, 8)
	r, _ := buildTable(t, be, "rev3.sst", BuilderOptions{BlockBytes: 128}, es)
	it := r.NewIter()
	rng := rand.New(rand.NewSource(2))
	pos := -1
	for step := 0; step < 2000; step++ {
		switch rng.Intn(4) {
		case 0:
			it.First()
			pos = 0
		case 1:
			it.Last()
			pos = 199
		case 2:
			if pos < 0 {
				continue
			}
			it.Next()
			pos++
			if pos > 199 {
				pos = -1
			}
		case 3:
			if pos < 0 {
				continue
			}
			it.Prev()
			pos--
		}
		if pos < 0 {
			if it.Valid() {
				t.Fatalf("step %d: valid at %q, want invalid", step, it.Key())
			}
			continue
		}
		want := fmt.Sprintf("key%06d", pos)
		if !it.Valid() || string(keys.UserKey(it.Key())) != want {
			t.Fatalf("step %d: at %q want %q", step, it.Key(), want)
		}
	}
}
