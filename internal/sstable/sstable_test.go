package sstable

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rocksmash/internal/keys"
	"rocksmash/internal/readprof"
	"rocksmash/internal/storage"
)

func newLocal(t *testing.T) *storage.Local {
	t.Helper()
	l, err := storage.NewLocal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// buildTable writes entries (already sorted by internal key) and opens a
// reader over the result.
func buildTable(t *testing.T, be storage.Backend, name string, opts BuilderOptions, entries []entry) (*Reader, Properties) {
	t.Helper()
	w, err := be.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(w, opts)
	for _, e := range entries {
		if err := b.Add(e.ikey, e.value); err != nil {
			t.Fatal(err)
		}
	}
	props, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := be.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r, props
}

type entry struct {
	ikey  []byte
	value []byte
}

func seqEntries(n int, valSize int) []entry {
	var es []entry
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%06d", i)
		v := bytes.Repeat([]byte{byte(i)}, valSize)
		es = append(es, entry{keys.MakeInternalKey(nil, []byte(k), uint64(i+1), keys.KindSet), v})
	}
	return es
}

func TestBuildAndGet(t *testing.T) {
	be := newLocal(t)
	es := seqEntries(1000, 32)
	r, props := buildTable(t, be, "t.sst", DefaultBuilderOptions(), es)
	if props.NumEntries != 1000 {
		t.Fatalf("entries = %d", props.NumEntries)
	}
	for i := 0; i < 1000; i += 37 {
		k := []byte(fmt.Sprintf("key%06d", i))
		v, found, live, err := r.Get(k, keys.MaxSequence)
		if err != nil {
			t.Fatal(err)
		}
		if !found || !live {
			t.Fatalf("key%06d missing", i)
		}
		if !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, 32)) {
			t.Fatalf("key%06d wrong value", i)
		}
	}
	// Missing keys.
	if _, found, _, _ := r.Get([]byte("nope"), keys.MaxSequence); found {
		t.Fatal("found nonexistent key")
	}
	if _, found, _, _ := r.Get([]byte("key9999999"), keys.MaxSequence); found {
		t.Fatal("found key past the end")
	}
}

func TestTombstoneVisible(t *testing.T) {
	be := newLocal(t)
	es := []entry{
		{keys.MakeInternalKey(nil, []byte("a"), 5, keys.KindDelete), nil},
		{keys.MakeInternalKey(nil, []byte("a"), 3, keys.KindSet), []byte("old")},
	}
	r, _ := buildTable(t, be, "t.sst", DefaultBuilderOptions(), es)
	_, found, live, err := r.Get([]byte("a"), keys.MaxSequence)
	if err != nil || !found || live {
		t.Fatalf("expected tombstone: found=%v live=%v err=%v", found, live, err)
	}
	v, found, live, err := r.Get([]byte("a"), 3)
	if err != nil || !found || !live || string(v) != "old" {
		t.Fatalf("old snapshot read failed: %q %v %v %v", v, found, live, err)
	}
}

func TestIterFullScan(t *testing.T) {
	be := newLocal(t)
	es := seqEntries(500, 16)
	r, _ := buildTable(t, be, "t.sst", BuilderOptions{BlockBytes: 256, RestartInterval: 4, BloomBitsPerKey: 10}, es)
	it := r.NewIter()
	i := 0
	for it.First(); it.Valid(); it.Next() {
		want := fmt.Sprintf("key%06d", i)
		if got := string(keys.UserKey(it.Key())); got != want {
			t.Fatalf("entry %d = %q want %q", i, got, want)
		}
		i++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if i != 500 {
		t.Fatalf("scanned %d entries", i)
	}
}

func TestIterSeekGE(t *testing.T) {
	be := newLocal(t)
	var es []entry
	for i := 0; i < 100; i += 2 {
		k := fmt.Sprintf("k%04d", i)
		es = append(es, entry{keys.MakeInternalKey(nil, []byte(k), 1, keys.KindSet), []byte("v")})
	}
	r, _ := buildTable(t, be, "t.sst", BuilderOptions{BlockBytes: 128}, es)
	it := r.NewIter()
	it.SeekGE(keys.MakeSeekKey(nil, []byte("k0013"), keys.MaxSequence))
	if !it.Valid() || string(keys.UserKey(it.Key())) != "k0014" {
		t.Fatalf("seek landed on valid=%v", it.Valid())
	}
	it.SeekGE(keys.MakeSeekKey(nil, []byte("zzz"), keys.MaxSequence))
	if it.Valid() {
		t.Fatal("seek past end should be invalid")
	}
}

func TestPropertiesRoundTrip(t *testing.T) {
	be := newLocal(t)
	es := []entry{
		{keys.MakeInternalKey(nil, []byte("aaa"), 10, keys.KindSet), []byte("v1")},
		{keys.MakeInternalKey(nil, []byte("bbb"), 12, keys.KindDelete), nil},
		{keys.MakeInternalKey(nil, []byte("ccc"), 11, keys.KindSet), []byte("v3")},
	}
	r, props := buildTable(t, be, "t.sst", DefaultBuilderOptions(), es)
	got := r.Properties()
	if got.NumEntries != 3 || got.NumDeletes != 1 {
		t.Fatalf("props = %+v", got)
	}
	if got.MinSeq != 10 || got.MaxSeq != 12 {
		t.Fatalf("seq range = [%d,%d]", got.MinSeq, got.MaxSeq)
	}
	if !bytes.Equal(keys.UserKey(got.Smallest), []byte("aaa")) ||
		!bytes.Equal(keys.UserKey(got.Largest), []byte("ccc")) {
		t.Fatalf("bounds = %q..%q", got.Smallest, got.Largest)
	}
	if props.NumEntries != got.NumEntries {
		t.Fatal("builder props disagree with file props")
	}
}

func TestNoFilterStillWorks(t *testing.T) {
	be := newLocal(t)
	es := seqEntries(50, 8)
	opts := DefaultBuilderOptions()
	opts.BloomBitsPerKey = 0
	r, _ := buildTable(t, be, "t.sst", opts, es)
	if !r.MayContain([]byte("anything")) {
		t.Fatal("filterless table must not reject keys")
	}
	v, found, live, err := r.Get([]byte("key000007"), keys.MaxSequence)
	if err != nil || !found || !live || len(v) != 8 {
		t.Fatalf("get = %v %v %v %v", v, found, live, err)
	}
}

func TestDataHandlesCoverFile(t *testing.T) {
	be := newLocal(t)
	es := seqEntries(300, 64)
	r, _ := buildTable(t, be, "t.sst", BuilderOptions{BlockBytes: 512}, es)
	hs, err := r.DataHandles()
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) < 10 {
		t.Fatalf("expected many blocks, got %d", len(hs))
	}
	// Handles must be ascending and non-overlapping.
	for i := 1; i < len(hs); i++ {
		if hs[i].Offset < hs[i-1].Offset+hs[i-1].Length {
			t.Fatalf("handles overlap at %d", i)
		}
	}
}

func TestFetchHookInterposition(t *testing.T) {
	be := newLocal(t)
	es := seqEntries(200, 32)
	r, _ := buildTable(t, be, "t.sst", BuilderOptions{BlockBytes: 512}, es)
	calls := 0
	r.SetFetch(func(fileNum uint64, h Handle, prof *readprof.Profile) ([]byte, error) {
		calls++
		return r.readDirect(fileNum, h, prof)
	})
	if _, found, _, err := r.Get([]byte("key000050"), keys.MaxSequence); err != nil || !found {
		t.Fatalf("get via hook failed: %v %v", found, err)
	}
	if calls != 1 {
		t.Fatalf("fetch hook called %d times", calls)
	}
}

func TestCorruptBlockDetected(t *testing.T) {
	be := newLocal(t)
	es := seqEntries(100, 32)
	_, _ = buildTable(t, be, "t.sst", DefaultBuilderOptions(), es)
	data, err := be.ReadAll("t.sst")
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the first data block.
	data[10] ^= 0xff
	if err := storage.WriteObject(be, "bad.sst", data); err != nil {
		t.Fatal(err)
	}
	f, err := be.Open("bad.sst")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(f, 2)
	if err != nil {
		t.Fatal(err) // metadata is at the end; still intact
	}
	defer r.Close()
	_, _, _, err = r.Get([]byte("key000000"), keys.MaxSequence)
	if err == nil {
		t.Fatal("corrupt data block should fail the read")
	}
}

func TestTruncatedFileRejected(t *testing.T) {
	be := newLocal(t)
	if err := storage.WriteObject(be, "tiny.sst", []byte("not a table")); err != nil {
		t.Fatal(err)
	}
	f, _ := be.Open("tiny.sst")
	if _, err := Open(f, 3); err == nil {
		t.Fatal("tiny file should fail to open")
	}
}

func TestHandleEncoding(t *testing.T) {
	f := func(off, ln uint64) bool {
		h := Handle{Offset: off, Length: ln}
		dec, err := DecodeHandle(h.EncodeVarint(nil))
		return err == nil && dec == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTableRoundTrip(t *testing.T) {
	be := newLocal(t)
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		m := map[string][]byte{}
		for i := 0; i < int(n%300)+1; i++ {
			v := make([]byte, rng.Intn(100))
			rng.Read(v)
			m[fmt.Sprintf("k%05d", rng.Intn(5000))] = v
		}
		var ks []string
		for k := range m {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		var es []entry
		for i, k := range ks {
			es = append(es, entry{keys.MakeInternalKey(nil, []byte(k), uint64(i+1), keys.KindSet), m[k]})
		}
		name := fmt.Sprintf("q%d.sst", seed)
		w, err := be.Create(name)
		if err != nil {
			return false
		}
		b := NewBuilder(w, BuilderOptions{BlockBytes: 256})
		for _, e := range es {
			if b.Add(e.ikey, e.value) != nil {
				return false
			}
		}
		if _, err := b.Finish(); err != nil {
			return false
		}
		w.Close()
		fr, err := be.Open(name)
		if err != nil {
			return false
		}
		r, err := Open(fr, 9)
		if err != nil {
			return false
		}
		defer r.Close()
		for _, k := range ks {
			v, found, live, err := r.Get([]byte(k), keys.MaxSequence)
			if err != nil || !found || !live || !bytes.Equal(v, m[k]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMetadataBytesPositive(t *testing.T) {
	be := newLocal(t)
	es := seqEntries(500, 16)
	r, _ := buildTable(t, be, "t.sst", DefaultBuilderOptions(), es)
	if r.MetadataBytes() <= 0 {
		t.Fatal("metadata accounting should be positive")
	}
}
