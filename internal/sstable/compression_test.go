package sstable

import (
	"bytes"
	"fmt"
	"testing"

	"rocksmash/internal/keys"
)

func buildCompressed(t *testing.T, codec Compression, entries []entry) (*Reader, int) {
	t.Helper()
	be := newLocal(t)
	name := fmt.Sprintf("c%d.sst", codec)
	w, err := be.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultBuilderOptions()
	opts.Compression = codec
	b := NewBuilder(w, opts)
	for _, e := range entries {
		if err := b.Add(e.ikey, e.value); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	w.Close()
	sz, _ := be.Size(name)
	f, err := be.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r, int(sz)
}

// compressibleEntries have repetitive values that flate shrinks well.
func compressibleEntries(n int) []entry {
	var es []entry
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%06d", i)
		v := bytes.Repeat([]byte("abcdefgh"), 64) // 512 B, highly repetitive
		es = append(es, entry{keys.MakeInternalKey(nil, []byte(k), uint64(i+1), keys.KindSet), v})
	}
	return es
}

func TestFlateRoundTrip(t *testing.T) {
	es := compressibleEntries(500)
	r, _ := buildCompressed(t, CompressionFlate, es)
	for i := 0; i < 500; i += 17 {
		k := []byte(fmt.Sprintf("key%06d", i))
		v, found, live, err := r.Get(k, keys.MaxSequence)
		if err != nil || !found || !live {
			t.Fatalf("get %q: %v %v %v", k, found, live, err)
		}
		if !bytes.Equal(v, bytes.Repeat([]byte("abcdefgh"), 64)) {
			t.Fatalf("value corrupted for %q", k)
		}
	}
	// Full scan too.
	it := r.NewIter()
	n := 0
	for it.First(); it.Valid(); it.Next() {
		n++
	}
	if it.Err() != nil || n != 500 {
		t.Fatalf("scan n=%d err=%v", n, it.Err())
	}
}

func TestFlateShrinksCompressibleData(t *testing.T) {
	es := compressibleEntries(500)
	_, rawSize := buildCompressed(t, CompressionNone, es)
	_, zSize := buildCompressed(t, CompressionFlate, es)
	if zSize >= rawSize/2 {
		t.Fatalf("flate table %d not much smaller than raw %d", zSize, rawSize)
	}
}

func TestIncompressibleBlocksStoredRaw(t *testing.T) {
	// Random values: flate cannot shrink them; the table must not grow
	// (beyond noise) and must still read back.
	var es []entry
	rnd := []byte{}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("key%06d", i)
		v := make([]byte, 256)
		for j := range v {
			rnd = append(rnd, byte(i*7+j*13))
			v[j] = byte((i * 131071) ^ (j * 8191) ^ (i >> 3) ^ len(rnd))
		}
		es = append(es, entry{keys.MakeInternalKey(nil, []byte(k), uint64(i+1), keys.KindSet), v})
	}
	_, rawSize := buildCompressed(t, CompressionNone, es)
	r, zSize := buildCompressed(t, CompressionFlate, es)
	if zSize > rawSize+rawSize/20 {
		t.Fatalf("incompressible table grew: %d vs %d", zSize, rawSize)
	}
	if _, found, _, err := r.Get([]byte("key000000"), keys.MaxSequence); err != nil || !found {
		t.Fatalf("read back failed: %v %v", found, err)
	}
}

func TestMetadataTailUncompressed(t *testing.T) {
	es := compressibleEntries(200)
	r, _ := buildCompressed(t, CompressionFlate, es)
	// The pinned metadata must parse (it does, since Open succeeded) and
	// MetaTail must produce a tail the TailReader can serve.
	tailOff, tail, err := MetaTail(r.File())
	if err != nil {
		t.Fatal(err)
	}
	if tailOff == 0 || len(tail) == 0 {
		t.Fatal("empty metadata tail")
	}
}
