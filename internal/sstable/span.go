package sstable

import (
	"fmt"

	"rocksmash/internal/storage"
)

// End returns the file offset one past the block's on-disk bytes,
// including the trailer — the exclusive upper bound of the range a reader
// must fetch for this block.
func (h Handle) End() uint64 { return h.Offset + h.Length + blockTrailerLen }

// PlanSpans groups data-block handles into spans of up to blocksPerSpan
// consecutive blocks. Data blocks are written back to back, so each span is
// one contiguous byte range that a single range GET can fetch; this is the
// planning step behind compaction prefetch and iterator readahead.
// blocksPerSpan <= 1 yields one span per block (no coalescing).
func PlanSpans(hs []Handle, blocksPerSpan int) [][]Handle {
	if blocksPerSpan < 1 {
		blocksPerSpan = 1
	}
	var spans [][]Handle
	for len(hs) > 0 {
		n := blocksPerSpan
		if n > len(hs) {
			n = len(hs)
		}
		// Only coalesce physically adjacent blocks; a gap (never produced
		// by the builder, but cheap to guard) ends the span early.
		end := 1
		for end < n && hs[end].Offset == hs[end-1].End() {
			end++
		}
		spans = append(spans, hs[:end])
		hs = hs[end:]
	}
	return spans
}

// ReadRawSpan fetches the contiguous range covering hs with a single ReadAt
// — one GET on a cloud backend regardless of the block count — and returns
// each block's verified body in order. The handles must be adjacent in file
// order (as produced by PlanSpans).
func ReadRawSpan(r storage.Reader, hs []Handle) ([][]byte, error) {
	if len(hs) == 0 {
		return nil, nil
	}
	base := hs[0].Offset
	raw := make([]byte, hs[len(hs)-1].End()-base)
	if _, err := r.ReadAt(raw, int64(base)); err != nil {
		return nil, err
	}
	bodies := make([][]byte, len(hs))
	for i, h := range hs {
		if h.Offset < base || h.End()-base > uint64(len(raw)) {
			return nil, fmt.Errorf("%w: non-contiguous span handle", ErrCorrupt)
		}
		body, err := VerifyBlock(raw[h.Offset-base : h.End()-base])
		if err != nil {
			return nil, err
		}
		bodies[i] = body
	}
	return bodies, nil
}
