package sstable

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"rocksmash/internal/keys"
)

// testView builds a deterministic multi-member view whose entries exercise
// the encoder's delta paths: adjacent blocks within a member (zero offset
// delta), member transitions (absolute offsets), and shared separator
// prefixes.
func testView() *View {
	v := &View{Level: 2, Members: []uint64{11, 42, 107}}
	var off uint64
	for mi := range v.Members {
		off = uint64(mi) * 1000 // member switch: non-contiguous offsets
		for b := 0; b < 4; b++ {
			sep := keys.MakeSeekKey(nil, []byte(fmt.Sprintf("m%02d-block%03d", mi, b)), keys.MaxSequence)
			length := uint64(200 + 13*b)
			v.Entries = append(v.Entries, ViewEntry{
				Member: int32(mi),
				H:      Handle{Offset: off, Length: length},
				Sep:    sep,
			})
			off += length
		}
	}
	return v
}

func viewsEqual(a, b *View) bool {
	if a.Level != b.Level || len(a.Members) != len(b.Members) || len(a.Entries) != len(b.Entries) {
		return false
	}
	for i := range a.Members {
		if a.Members[i] != b.Members[i] {
			return false
		}
	}
	for i := range a.Entries {
		x, y := a.Entries[i], b.Entries[i]
		if x.Member != y.Member || x.H != y.H || !bytes.Equal(x.Sep, y.Sep) {
			return false
		}
	}
	return true
}

func TestViewEncodeDecodeRoundtrip(t *testing.T) {
	v := testView()
	got, err := DecodeView(EncodeView(v))
	if err != nil {
		t.Fatal(err)
	}
	if !viewsEqual(v, got) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, v)
	}
}

func TestViewEncodeDecodeEmpty(t *testing.T) {
	v := &View{Level: 1}
	got, err := DecodeView(EncodeView(v))
	if err != nil {
		t.Fatal(err)
	}
	if got.Level != 1 || len(got.Members) != 0 || len(got.Entries) != 0 {
		t.Fatalf("empty view roundtrip: %+v", got)
	}
}

// TestViewDecodeCorruption flips every byte of the encoding in turn and
// truncates it at every length; each damaged copy must fail with
// ErrCorrupt — never panic, never decode silently.
func TestViewDecodeCorruption(t *testing.T) {
	enc := EncodeView(testView())
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x5a
		if _, err := DecodeView(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: err = %v, want ErrCorrupt", i, err)
		}
	}
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeView(enc[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncate to %d: err = %v, want ErrCorrupt", n, err)
		}
	}
}

func TestViewSeek(t *testing.T) {
	v := testView()
	// Before everything.
	if got := v.Seek(keys.MakeSeekKey(nil, []byte("a"), keys.MaxSequence)); got != 0 {
		t.Fatalf("Seek(before-all) = %d, want 0", got)
	}
	// Beyond everything.
	if got := v.Seek(keys.MakeSeekKey(nil, []byte("zzz"), keys.MaxSequence)); got != len(v.Entries) {
		t.Fatalf("Seek(after-all) = %d, want %d", got, len(v.Entries))
	}
	// Each separator's own user key must land on (at latest) its entry,
	// and a key just past it must land strictly later.
	for i, e := range v.Entries {
		uk := keys.UserKey(e.Sep)
		if got := v.Seek(keys.MakeSeekKey(nil, uk, keys.MaxSequence)); got > i {
			t.Fatalf("Seek(sep[%d]) = %d, want <= %d", i, got, i)
		}
		past := append(append([]byte(nil), uk...), 0xff)
		if got := v.Seek(keys.MakeSeekKey(nil, past, keys.MaxSequence)); got <= i {
			t.Fatalf("Seek(past sep[%d]) = %d, want > %d", i, got, i)
		}
	}
}

func TestViewSeekMonotonic(t *testing.T) {
	v := testView()
	prev := -1
	// Seeking increasing targets must yield non-decreasing ordinals.
	for i := range v.Entries {
		got := v.Seek(v.Entries[i].Sep)
		if got < prev {
			t.Fatalf("Seek went backwards: %d then %d", prev, got)
		}
		prev = got
	}
}

func TestBuildViewOrder(t *testing.T) {
	v := testView()
	var indexes [][]IndexEntry
	for mi := range v.Members {
		var idx []IndexEntry
		for _, e := range v.Entries {
			if int(e.Member) == mi {
				idx = append(idx, IndexEntry{Sep: e.Sep, H: e.H})
			}
		}
		indexes = append(indexes, idx)
	}
	rebuilt := BuildView(v.Level, v.Members, indexes, nil)
	if !viewsEqual(v, rebuilt) {
		t.Fatal("BuildView did not reproduce the member-order concatenation")
	}
	for i := 1; i < len(rebuilt.Entries); i++ {
		if keys.Compare(rebuilt.Entries[i-1].Sep, rebuilt.Entries[i].Sep) > 0 {
			t.Fatalf("entry %d out of global key order", i)
		}
	}
}

// TestBuildViewClampsFinalSeparator reproduces the overshoot hazard: a
// member's final index separator is a short successor ("l") that sorts
// past the next member's whole key range. Clamping to the member's largest
// internal key must restore global separator order.
func TestBuildViewClampsFinalSeparator(t *testing.T) {
	sep := func(uk string) []byte { return keys.MakeSeekKey(nil, []byte(uk), keys.MaxSequence) }
	indexes := [][]IndexEntry{
		{
			{Sep: sep("key100"), H: Handle{Offset: 0, Length: 10}},
			// Writer's final separator: short successor of "key150".
			{Sep: sep("l"), H: Handle{Offset: 10, Length: 10}},
		},
		{
			{Sep: sep("key200"), H: Handle{Offset: 0, Length: 10}},
			{Sep: sep("l"), H: Handle{Offset: 10, Length: 10}},
		},
	}
	uppers := [][]byte{sep("key150"), sep("key250")}
	v := BuildView(3, []uint64{1, 2}, indexes, uppers)
	for i := 1; i < len(v.Entries); i++ {
		if keys.Compare(v.Entries[i-1].Sep, v.Entries[i].Sep) > 0 {
			t.Fatalf("entry %d out of order: %q > %q", i,
				keys.UserKey(v.Entries[i-1].Sep), keys.UserKey(v.Entries[i].Sep))
		}
	}
	if got := keys.UserKey(v.Entries[1].Sep); string(got) != "key150" {
		t.Fatalf("member 0 final separator = %q, want clamped key150", got)
	}
	if got := keys.UserKey(v.Entries[3].Sep); string(got) != "key250" {
		t.Fatalf("member 1 final separator = %q, want clamped key250", got)
	}
}
