package sstable

import (
	"bytes"
	"fmt"
	"io"

	"rocksmash/internal/block"
	"rocksmash/internal/bloom"
	"rocksmash/internal/keys"
	"rocksmash/internal/readprof"
	"rocksmash/internal/storage"
)

// FetchFunc retrieves and verifies the body of the data block at h in file
// fileNum. The DB layers its caches (in-memory block cache, persistent
// cache) behind this hook; the default implementation reads the table file
// directly. prof, when non-nil, is the request-scoped read profile the
// implementation attributes the block read to (source tier, bytes, nanos).
type FetchFunc func(fileNum uint64, h Handle, prof *readprof.Profile) ([]byte, error)

// Reader provides lookups and scans over one table. Per the paper's design
// all table *metadata* — footer, index block, bloom filter, properties — is
// loaded eagerly at open time and pinned in memory, so only data-block
// reads ever touch the (possibly cloud-resident) file body.
type Reader struct {
	fileNum uint64
	f       storage.Reader
	props   Properties
	index   *block.Reader
	filter  bloom.Filter
	fetch   FetchFunc
}

// TailReader overlays an in-memory copy of a table's metadata tail on top
// of the (possibly remote) data file: reads at or beyond tailOff are served
// from memory, so opening the table performs no remote I/O when the tail
// was cached locally (the store's "metadata stays local" rule).
type TailReader struct {
	f       storage.Reader
	tailOff int64
	tail    []byte
}

// NewTailReader wraps f with the metadata tail starting at tailOff.
func NewTailReader(f storage.Reader, tailOff int64, tail []byte) *TailReader {
	return &TailReader{f: f, tailOff: tailOff, tail: tail}
}

// ReadAt implements storage.Reader.
func (t *TailReader) ReadAt(p []byte, off int64) (int, error) {
	if off >= t.tailOff {
		i := off - t.tailOff
		if i >= int64(len(t.tail)) {
			return 0, io.EOF
		}
		n := copy(p, t.tail[i:])
		if n < len(p) {
			return n, io.EOF
		}
		return n, nil
	}
	// Reads never straddle the boundary in practice (blocks are either
	// data or metadata), but handle it by splitting.
	if off+int64(len(p)) > t.tailOff {
		k := t.tailOff - off
		n1, err := t.f.ReadAt(p[:k], off)
		if err != nil && err != io.EOF {
			return n1, err
		}
		n2, err := t.ReadAt(p[k:], t.tailOff)
		return n1 + n2, err
	}
	return t.f.ReadAt(p, off)
}

// Size implements storage.Reader.
func (t *TailReader) Size() int64 { return t.tailOff + int64(len(t.tail)) }

// Close implements storage.Reader.
func (t *TailReader) Close() error { return t.f.Close() }

// Open reads the table metadata from f. The Reader takes ownership of f and
// closes it via Close.
func Open(f storage.Reader, fileNum uint64) (*Reader, error) {
	size := f.Size()
	if size < footerLen {
		return nil, fmt.Errorf("%w: file too small (%d bytes)", ErrCorrupt, size)
	}
	fbuf := make([]byte, footerLen)
	if _, err := f.ReadAt(fbuf, size-footerLen); err != nil && err != io.EOF {
		return nil, err
	}
	ftr, err := decodeFooter(fbuf)
	if err != nil {
		return nil, err
	}
	r := &Reader{fileNum: fileNum, f: f}
	r.fetch = r.readDirect

	idxBody, err := ReadRawBlock(f, ftr.index)
	if err != nil {
		return nil, err
	}
	if r.index, err = block.NewReader(idxBody); err != nil {
		return nil, err
	}
	if ftr.filter.Length > 0 {
		fb, err := ReadRawBlock(f, ftr.filter)
		if err != nil {
			return nil, err
		}
		r.filter = bloom.Filter(fb)
	}
	pb, err := ReadRawBlock(f, ftr.props)
	if err != nil {
		return nil, err
	}
	if r.props, err = decodeProperties(pb); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Reader) readDirect(_ uint64, h Handle, _ *readprof.Profile) ([]byte, error) {
	return ReadRawBlock(r.f, h)
}

// SetFetch interposes fn on all data-block reads.
func (r *Reader) SetFetch(fn FetchFunc) { r.fetch = fn }

// File exposes the underlying object handle so an interposed FetchFunc can
// perform the raw read on a cache miss.
func (r *Reader) File() storage.Reader { return r.f }

// FileNum returns the table's file number.
func (r *Reader) FileNum() uint64 { return r.fileNum }

// Properties returns the table statistics.
func (r *Reader) Properties() Properties { return r.props }

// MetadataBytes reports the in-memory footprint of the pinned metadata
// (index + filter), used for the paper's metadata-overhead accounting.
func (r *Reader) MetadataBytes() int {
	n := len(r.filter)
	// The index reader retains its body slice.
	it := r.index.NewIter()
	it.First()
	// Approximate: count the raw index entries length via iteration once.
	for it.Valid() {
		n += len(it.Key()) + len(it.Value())
		it.Next()
	}
	return n
}

// DataHandles returns the handles of all data blocks in file order; the
// persistent cache uses this for compaction-aware region layout.
func (r *Reader) DataHandles() ([]Handle, error) {
	var hs []Handle
	it := r.index.NewIter()
	for it.First(); it.Valid(); it.Next() {
		h, err := DecodeHandle(it.Value())
		if err != nil {
			return nil, err
		}
		hs = append(hs, h)
	}
	if it.Err() != nil {
		return nil, it.Err()
	}
	return hs, nil
}

// IndexEntry pairs one data block's handle with its index separator (an
// internal key upper-bounding the block's entries).
type IndexEntry struct {
	Sep []byte
	H   Handle
}

// IndexEntries returns every data block's separator and handle in file
// order, decoded from the pinned index block — no data I/O. The sorted-view
// builder concatenates these across a level's members.
func (r *Reader) IndexEntries() ([]IndexEntry, error) {
	var es []IndexEntry
	it := r.index.NewIter()
	for it.First(); it.Valid(); it.Next() {
		h, err := DecodeHandle(it.Value())
		if err != nil {
			return nil, err
		}
		es = append(es, IndexEntry{Sep: append([]byte(nil), it.Key()...), H: h})
	}
	if it.Err() != nil {
		return nil, it.Err()
	}
	return es, nil
}

// MayContain consults the bloom filter for ukey. Tables without filters
// always return true.
func (r *Reader) MayContain(ukey []byte) bool {
	if r.filter == nil {
		return true
	}
	return r.filter.MayContainKey(ukey)
}

// Get finds the newest entry for ukey visible at snapshot seq.
// Return contract matches memtable.Get: (value, found, live).
func (r *Reader) Get(ukey []byte, seq uint64) (value []byte, found, live bool, err error) {
	return r.GetProf(ukey, seq, nil)
}

// GetProf is Get with read-path attribution: when prof is non-nil it
// records the bloom-filter consultation (and a true-negative rejection)
// and threads prof to the data-block fetch so the block's source tier is
// attributed to this request.
func (r *Reader) GetProf(ukey []byte, seq uint64, prof *readprof.Profile) (value []byte, found, live bool, err error) {
	if r.filter != nil {
		if prof != nil {
			prof.BloomChecked++
		}
		if !r.filter.MayContainKey(ukey) {
			if prof != nil {
				prof.BloomNegative++
			}
			return nil, false, false, nil
		}
	}
	seek := keys.MakeSeekKey(nil, ukey, seq)
	idx := r.index.NewIter()
	idx.SeekGE(seek)
	if !idx.Valid() {
		return nil, false, false, idx.Err()
	}
	h, err := DecodeHandle(idx.Value())
	if err != nil {
		return nil, false, false, err
	}
	body, err := r.fetch(r.fileNum, h, prof)
	if err != nil {
		return nil, false, false, err
	}
	br, err := block.NewReader(body)
	if err != nil {
		return nil, false, false, err
	}
	it := br.NewIter()
	it.SeekGE(seek)
	if !it.Valid() {
		return nil, false, false, it.Err()
	}
	if !bytes.Equal(keys.UserKey(it.Key()), ukey) {
		return nil, false, false, nil
	}
	_, kind := keys.DecodeTrailer(it.Key())
	if kind == keys.KindDelete {
		return nil, true, false, nil
	}
	return append([]byte(nil), it.Value()...), true, true, nil
}

// Close releases the underlying file handle.
func (r *Reader) Close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

// Iter is a forward iterator over the table's internal keys.
type Iter struct {
	r     *Reader
	idx   *block.Iter
	data  *block.Iter
	fetch FetchFunc
	prof  *readprof.Profile
	err   error
}

// SetProfile attributes the iterator's data-block reads to prof (nil
// detaches). The profile must outlive the iterator's use.
func (it *Iter) SetProfile(p *readprof.Profile) { it.prof = p }

// NewIter returns an unpositioned iterator.
func (r *Reader) NewIter() *Iter {
	return &Iter{r: r, idx: r.index.NewIter(), fetch: r.fetch}
}

// NewIterWithFetch returns an iterator whose data-block reads use fetch
// instead of the reader's default path. Compaction uses this to bypass
// cache admission (scan resistance).
func (r *Reader) NewIterWithFetch(fetch FetchFunc) *Iter {
	return &Iter{r: r, idx: r.index.NewIter(), fetch: fetch}
}

func (it *Iter) loadData() bool {
	if !it.idx.Valid() {
		it.data = nil
		return false
	}
	h, err := DecodeHandle(it.idx.Value())
	if err != nil {
		it.err = err
		it.data = nil
		return false
	}
	body, err := it.fetch(it.r.fileNum, h, it.prof)
	if err != nil {
		it.err = err
		it.data = nil
		return false
	}
	br, err := block.NewReader(body)
	if err != nil {
		it.err = err
		it.data = nil
		return false
	}
	it.data = br.NewIter()
	return true
}

// First positions at the first entry.
func (it *Iter) First() {
	it.idx.First()
	if it.loadData() {
		it.data.First()
		it.skipEmptyForward()
	}
}

// SeekGE positions at the first entry with internal key >= target.
func (it *Iter) SeekGE(target []byte) {
	it.idx.SeekGE(target)
	if it.loadData() {
		it.data.SeekGE(target)
		it.skipEmptyForward()
	}
}

// Next advances one entry.
func (it *Iter) Next() {
	if it.data == nil {
		return
	}
	it.data.Next()
	it.skipEmptyForward()
}

// Last positions at the final entry.
func (it *Iter) Last() {
	it.idx.Last()
	if it.loadData() {
		it.data.Last()
		it.skipEmptyBackward()
	}
}

// SeekLT positions at the last entry with internal key < target.
func (it *Iter) SeekLT(target []byte) {
	// The block whose separator is >= target may still hold entries
	// < target; start there and walk backward as needed.
	it.idx.SeekGE(target)
	if !it.idx.Valid() {
		// target is beyond every separator: start from the last block.
		it.Last()
		if it.Valid() && keys.Compare(it.Key(), target) >= 0 {
			it.prevEntry()
		}
		return
	}
	if !it.loadData() {
		return
	}
	it.data.SeekLT(target)
	it.skipEmptyBackward()
}

// Prev moves one entry backward.
func (it *Iter) Prev() {
	if it.data == nil {
		return
	}
	it.prevEntry()
}

func (it *Iter) prevEntry() {
	it.data.Prev()
	it.skipEmptyBackward()
}

func (it *Iter) skipEmptyForward() {
	for it.data != nil && !it.data.Valid() {
		if it.data.Err() != nil {
			it.err = it.data.Err()
			it.data = nil
			return
		}
		it.idx.Next()
		if !it.loadData() {
			return
		}
		it.data.First()
	}
}

func (it *Iter) skipEmptyBackward() {
	for it.data != nil && !it.data.Valid() {
		if it.data.Err() != nil {
			it.err = it.data.Err()
			it.data = nil
			return
		}
		it.idx.Prev()
		if !it.loadData() {
			return
		}
		it.data.Last()
	}
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iter) Valid() bool { return it.data != nil && it.data.Valid() }

// Key returns the current internal key.
func (it *Iter) Key() []byte { return it.data.Key() }

// Value returns the current value.
func (it *Iter) Value() []byte { return it.data.Value() }

// Err returns the first error encountered.
func (it *Iter) Err() error {
	if it.err != nil {
		return it.err
	}
	if it.idx.Err() != nil {
		return it.idx.Err()
	}
	return nil
}
