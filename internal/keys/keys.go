// Package keys defines the internal key encoding used throughout the LSM
// tree. An internal key is the user key followed by an 8-byte trailer that
// packs a 56-bit sequence number and an 8-bit value kind:
//
//	| user key ... | (seq << 8 | kind) little-endian, 8 bytes |
//
// Internal keys order by user key ascending, then sequence number
// descending, then kind descending, so that the newest entry for a user key
// is encountered first during a forward scan.
package keys

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Kind distinguishes the type of entry an internal key refers to.
type Kind uint8

const (
	// KindDelete marks a point tombstone.
	KindDelete Kind = 0
	// KindSet marks a live key/value pair.
	KindSet Kind = 1
	// KindMax is the largest kind value; used when constructing seek keys
	// so that they sort before all entries with the same (key, seq).
	KindMax Kind = 1
)

// TrailerLen is the encoded size of the (sequence, kind) trailer.
const TrailerLen = 8

// MaxSequence is the largest representable sequence number (56 bits).
const MaxSequence = uint64(1)<<56 - 1

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindDelete:
		return "DEL"
	case KindSet:
		return "SET"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// PackTrailer combines a sequence number and kind into the 64-bit trailer.
func PackTrailer(seq uint64, kind Kind) uint64 {
	return seq<<8 | uint64(kind)
}

// UnpackTrailer splits a trailer into sequence number and kind.
func UnpackTrailer(t uint64) (seq uint64, kind Kind) {
	return t >> 8, Kind(t & 0xff)
}

// MakeInternalKey appends the encoded internal key for (ukey, seq, kind) to
// dst and returns the extended buffer.
func MakeInternalKey(dst, ukey []byte, seq uint64, kind Kind) []byte {
	dst = append(dst, ukey...)
	var tr [TrailerLen]byte
	binary.LittleEndian.PutUint64(tr[:], PackTrailer(seq, kind))
	return append(dst, tr[:]...)
}

// MakeSeekKey builds an internal key that positions a seek at the first
// entry for ukey visible at snapshot seq.
func MakeSeekKey(dst, ukey []byte, seq uint64) []byte {
	return MakeInternalKey(dst, ukey, seq, KindMax)
}

// UserKey returns the user-key portion of an internal key.
// It panics if ikey is shorter than the trailer.
func UserKey(ikey []byte) []byte {
	return ikey[:len(ikey)-TrailerLen]
}

// DecodeTrailer extracts the sequence number and kind from an internal key.
func DecodeTrailer(ikey []byte) (seq uint64, kind Kind) {
	t := binary.LittleEndian.Uint64(ikey[len(ikey)-TrailerLen:])
	return UnpackTrailer(t)
}

// Valid reports whether ikey is long enough to hold a trailer.
func Valid(ikey []byte) bool {
	return len(ikey) >= TrailerLen
}

// Compare orders two internal keys: user key ascending, then sequence
// descending, then kind descending. It implements the total order required
// by the memtable and SSTables.
func Compare(a, b []byte) int {
	if c := bytes.Compare(UserKey(a), UserKey(b)); c != 0 {
		return c
	}
	ta := binary.LittleEndian.Uint64(a[len(a)-TrailerLen:])
	tb := binary.LittleEndian.Uint64(b[len(b)-TrailerLen:])
	switch {
	case ta > tb:
		return -1
	case ta < tb:
		return 1
	default:
		return 0
	}
}

// Separator returns a key k such that a <= k < b in internal-key order,
// chosen to be short. It is used for index-block boundary keys. a and b are
// internal keys; the result is a valid internal key.
func Separator(a, b []byte) []byte {
	ua, ub := UserKey(a), UserKey(b)
	sep := shortestSeparator(ua, ub)
	if len(sep) < len(ua) && bytes.Compare(ua, sep) < 0 {
		// A strictly shorter user key was found. Tag it with the maximal
		// trailer so it sorts before every real entry with that user key.
		return MakeInternalKey(nil, sep, MaxSequence, KindMax)
	}
	return append([]byte(nil), a...)
}

// Successor returns a short key >= a (internal-key order), used for the last
// index entry in a table.
func Successor(a []byte) []byte {
	ua := UserKey(a)
	for i := 0; i < len(ua); i++ {
		if ua[i] != 0xff {
			s := append([]byte(nil), ua[:i+1]...)
			s[i]++
			return MakeInternalKey(nil, s, MaxSequence, KindMax)
		}
	}
	return append([]byte(nil), a...)
}

// shortestSeparator returns the shortest byte string s with a <= s < b,
// falling back to a when no shorter string exists.
func shortestSeparator(a, b []byte) []byte {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	if i >= n {
		// One is a prefix of the other; cannot shorten.
		return a
	}
	if a[i] < 0xff && a[i]+1 < b[i] {
		s := append([]byte(nil), a[:i+1]...)
		s[i]++
		return s
	}
	return a
}
