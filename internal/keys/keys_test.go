package keys

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackUnpackTrailer(t *testing.T) {
	cases := []struct {
		seq  uint64
		kind Kind
	}{
		{0, KindDelete},
		{1, KindSet},
		{MaxSequence, KindSet},
		{123456789, KindDelete},
	}
	for _, c := range cases {
		seq, kind := UnpackTrailer(PackTrailer(c.seq, c.kind))
		if seq != c.seq || kind != c.kind {
			t.Errorf("round trip (%d,%v) -> (%d,%v)", c.seq, c.kind, seq, kind)
		}
	}
}

func TestMakeAndDecodeInternalKey(t *testing.T) {
	ik := MakeInternalKey(nil, []byte("hello"), 42, KindSet)
	if got := UserKey(ik); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("user key = %q", got)
	}
	seq, kind := DecodeTrailer(ik)
	if seq != 42 || kind != KindSet {
		t.Fatalf("trailer = (%d,%v)", seq, kind)
	}
	if !Valid(ik) {
		t.Fatal("key should be valid")
	}
	if Valid([]byte("short")) {
		t.Fatal("5-byte key should be invalid")
	}
}

func TestCompareOrdering(t *testing.T) {
	// Same user key: higher seq sorts first.
	a := MakeInternalKey(nil, []byte("k"), 10, KindSet)
	b := MakeInternalKey(nil, []byte("k"), 5, KindSet)
	if Compare(a, b) >= 0 {
		t.Error("seq 10 should sort before seq 5")
	}
	// Different user keys dominate.
	c := MakeInternalKey(nil, []byte("a"), 1, KindSet)
	d := MakeInternalKey(nil, []byte("b"), 100, KindSet)
	if Compare(c, d) >= 0 {
		t.Error("user key a should sort before b")
	}
	// Equal keys compare equal.
	if Compare(a, append([]byte(nil), a...)) != 0 {
		t.Error("identical keys should compare equal")
	}
	// Same (key, seq): KindSet sorts before KindDelete (descending kind).
	e := MakeInternalKey(nil, []byte("k"), 7, KindSet)
	f := MakeInternalKey(nil, []byte("k"), 7, KindDelete)
	if Compare(e, f) >= 0 {
		t.Error("SET should sort before DEL at equal seq")
	}
}

func TestSeekKeyPositionsBeforeEntries(t *testing.T) {
	// A seek key at snapshot s must compare <= every entry with seq <= s
	// for the same user key, and > entries with seq > s.
	seek := MakeSeekKey(nil, []byte("k"), 50)
	older := MakeInternalKey(nil, []byte("k"), 50, KindSet)
	newer := MakeInternalKey(nil, []byte("k"), 51, KindSet)
	if Compare(seek, older) > 0 {
		t.Error("seek key must not sort after a visible entry")
	}
	if Compare(seek, newer) <= 0 {
		t.Error("seek key must sort after an invisible (newer) entry")
	}
}

func TestSeparatorProperties(t *testing.T) {
	check := func(au, bu string, aseq, bseq uint64) {
		a := MakeInternalKey(nil, []byte(au), aseq, KindSet)
		b := MakeInternalKey(nil, []byte(bu), bseq, KindSet)
		if bytes.Compare([]byte(au), []byte(bu)) >= 0 {
			return
		}
		sep := Separator(a, b)
		if Compare(a, sep) > 0 {
			t.Errorf("Separator(%q,%q): a > sep", au, bu)
		}
		if Compare(sep, b) >= 0 {
			t.Errorf("Separator(%q,%q): sep >= b", au, bu)
		}
	}
	check("abc", "abf", 5, 9)
	check("abc", "abcd", 5, 9)
	check("a", "z", 1, 1)
	check("axyz", "b", 3, 3)
	check("ab\xff", "ac", 1, 2)
}

func TestSuccessorProperties(t *testing.T) {
	for _, u := range []string{"abc", "\xff\xff", "a\xffb", ""} {
		a := MakeInternalKey(nil, []byte(u), 9, KindSet)
		s := Successor(a)
		if Compare(a, s) > 0 {
			t.Errorf("Successor(%q) sorts before input", u)
		}
	}
}

func TestSeparatorQuick(t *testing.T) {
	f := func(au, bu []byte, aseq, bseq uint64) bool {
		aseq &= MaxSequence
		bseq &= MaxSequence
		if bytes.Compare(au, bu) >= 0 {
			return true
		}
		a := MakeInternalKey(nil, au, aseq, KindSet)
		b := MakeInternalKey(nil, bu, bseq, KindSet)
		sep := Separator(a, b)
		return Compare(a, sep) <= 0 && Compare(sep, b) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareQuickAntisymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := func() []byte {
		k := make([]byte, rng.Intn(8))
		rng.Read(k)
		return MakeInternalKey(nil, k, uint64(rng.Intn(100)), Kind(rng.Intn(2)))
	}
	for i := 0; i < 5000; i++ {
		a, b := gen(), gen()
		if Compare(a, b) != -Compare(b, a) {
			t.Fatalf("antisymmetry violated for %x %x", a, b)
		}
	}
}

func TestCompareTransitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gen := func() []byte {
		k := make([]byte, rng.Intn(4))
		rng.Read(k)
		return MakeInternalKey(nil, k, uint64(rng.Intn(8)), Kind(rng.Intn(2)))
	}
	for i := 0; i < 5000; i++ {
		a, b, c := gen(), gen(), gen()
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			t.Fatalf("transitivity violated: %x %x %x", a, b, c)
		}
	}
}
