package rocksmash_test

import (
	"fmt"
	"log"
	"os"

	"rocksmash"
)

// Example demonstrates the basic open/put/get/scan cycle.
func Example() {
	dir, err := os.MkdirTemp("", "rocksmash-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := rocksmash.Open(dir, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.Put([]byte("fruit:apple"), []byte("red"))
	db.Put([]byte("fruit:banana"), []byte("yellow"))
	db.Put([]byte("veg:carrot"), []byte("orange"))

	v, _ := db.Get([]byte("fruit:apple"))
	fmt.Printf("apple is %s\n", v)

	it, _ := db.NewIterator()
	defer it.Close()
	for it.Seek([]byte("fruit:")); it.Valid(); it.Next() {
		if string(it.Key()) >= "fruit;" {
			break
		}
		fmt.Printf("%s = %s\n", it.Key(), it.Value())
	}
	// Output:
	// apple is red
	// fruit:apple = red
	// fruit:banana = yellow
}

// ExampleDB_Write shows atomic multi-key commits.
func ExampleDB_Write() {
	dir, _ := os.MkdirTemp("", "rocksmash-example-*")
	defer os.RemoveAll(dir)
	db, err := rocksmash.Open(dir, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	b := rocksmash.NewWriteBatch()
	b.Set([]byte("from"), []byte("90"))
	b.Set([]byte("to"), []byte("10"))
	b.Delete([]byte("pending"))
	if err := db.Write(b); err != nil {
		log.Fatal(err)
	}
	v, _ := db.Get([]byte("to"))
	fmt.Printf("to=%s\n", v)
	// Output:
	// to=10
}

// ExampleDB_GetSnapshot shows consistent reads against a moving store.
func ExampleDB_GetSnapshot() {
	dir, _ := os.MkdirTemp("", "rocksmash-example-*")
	defer os.RemoveAll(dir)
	db, err := rocksmash.Open(dir, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.Put([]byte("counter"), []byte("1"))
	snap := db.GetSnapshot()
	defer snap.Release()
	db.Put([]byte("counter"), []byte("2"))

	old, _ := snap.Get([]byte("counter"))
	cur, _ := db.Get([]byte("counter"))
	fmt.Printf("snapshot=%s current=%s\n", old, cur)
	// Output:
	// snapshot=1 current=2
}

// ExampleIterator_Prev shows reverse iteration.
func ExampleIterator_Prev() {
	dir, _ := os.MkdirTemp("", "rocksmash-example-*")
	defer os.RemoveAll(dir)
	db, err := rocksmash.Open(dir, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	for _, k := range []string{"a", "b", "c"} {
		db.Put([]byte(k), []byte("v"))
	}
	it, _ := db.NewIterator()
	defer it.Close()
	for it.Last(); it.Valid(); it.Prev() {
		fmt.Printf("%s ", it.Key())
	}
	fmt.Println()
	// Output:
	// c b a
}
