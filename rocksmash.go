// Package rocksmash is a fast and efficient LSM-tree key–value store that
// integrates local storage with cloud object storage, reproducing the
// design of "Building A Fast and Efficient LSM-tree Store by Integrating
// Local Storage with Cloud Storage" (CLUSTER 2021 / RocksMash).
//
// The store keeps frequently accessed data — the write-ahead log, all
// metadata, and the upper LSM levels — on fast local storage, while the
// bulk of colder data lives in cloud object storage for cost-effectiveness.
// Reads of cloud-resident data are served through an LSM-aware persistent
// cache on local disk, and an extended write-ahead log enables fast
// parallel crash recovery.
//
// # Quickstart
//
//	db, err := rocksmash.Open("/tmp/mydb", nil)
//	if err != nil { ... }
//	defer db.Close()
//
//	db.Put([]byte("user:42"), []byte(`{"name":"ada"}`))
//	v, err := db.Get([]byte("user:42"))
//
//	it, _ := db.NewIterator()
//	defer it.Close()
//	for it.Seek([]byte("user:")); it.Valid(); it.Next() {
//	    fmt.Printf("%s = %s\n", it.Key(), it.Value())
//	}
//
// # Placement policies
//
// Open's options select a placement Policy. PolicyMash (default) is the
// paper's hybrid design. PolicyLocalOnly, PolicyCloudOnly and
// PolicyCloudLRU reproduce the comparison schemes from the paper's
// evaluation on the same engine.
package rocksmash

import (
	"rocksmash/internal/batch"
	"rocksmash/internal/db"
	"rocksmash/internal/event"
	"rocksmash/internal/sstable"
	"rocksmash/internal/storage"
)

// DB is an open store handle, safe for concurrent use.
type DB = db.DB

// Options configures a store; the zero value of any field falls back to
// the default from DefaultOptions.
type Options = db.Options

// Policy selects the local/cloud placement scheme.
type Policy = db.Policy

// Placement policies (see the package comment).
const (
	PolicyMash      = db.PolicyMash
	PolicyLocalOnly = db.PolicyLocalOnly
	PolicyCloudOnly = db.PolicyCloudOnly
	PolicyCloudLRU  = db.PolicyCloudLRU
)

// Compression selects the SSTable data-block codec (Options.Compression).
type Compression = sstable.Compression

// Data-block codecs.
const (
	CompressionNone  = sstable.CompressionNone
	CompressionFlate = sstable.CompressionFlate
)

// WriteBatch collects writes to be applied atomically via DB.Write.
type WriteBatch = batch.Batch

// Iterator walks live keys in either direction: First/Seek/Next forward,
// Last/SeekForPrev/Prev backward. Directions can be mixed freely.
type Iterator = db.Iterator

// Snapshot is a consistent read view; Release it when done.
type Snapshot = db.Snapshot

// Metrics is a point-in-time operational summary.
type Metrics = db.Metrics

// LatencySummary condenses one latency histogram (count, mean, p50/p90/p99,
// max), as embedded in Metrics.
type LatencySummary = db.LatencySummary

// EventListener receives engine lifecycle events (Options.EventListener).
// Embed NopListener to implement only the events of interest; see the
// internal event package docs for the listener contract.
type EventListener = event.Listener

// NopListener implements EventListener with no-ops, for embedding.
type NopListener = event.NopListener

// Event payload types, as delivered to an EventListener.
type (
	FlushBeginEvent      = event.FlushBegin
	FlushEndEvent        = event.FlushEnd
	CompactionBeginEvent = event.CompactionBegin
	CompactionEndEvent   = event.CompactionEnd
	TableUploadedEvent   = event.TableUploaded
	TableDeletedEvent    = event.TableDeleted
	WriteStallBeginEvent = event.WriteStallBegin
	WriteStallEndEvent   = event.WriteStallEnd
	PCacheAdmitEvent     = event.PCacheAdmit
	PCacheEvictEvent     = event.PCacheEvict
	CloudRetryEvent      = event.CloudRetry
)

// RecoveryReport describes the work the last Open performed to recover.
type RecoveryReport = db.RecoveryReport

// LatencyModel configures the simulated cloud backend's performance.
type LatencyModel = storage.LatencyModel

// CostModel prices simulated cloud usage.
type CostModel = storage.CostModel

// CostReport is a priced summary of cloud usage.
type CostReport = storage.CostReport

// Sentinel errors.
var (
	// ErrNotFound is returned by Get for missing keys.
	ErrNotFound = db.ErrNotFound
	// ErrClosed is returned by operations on a closed DB.
	ErrClosed = db.ErrClosed
)

// DefaultOptions returns the PolicyMash defaults.
func DefaultOptions() Options { return db.DefaultOptions() }

// Open opens (creating if necessary) a store rooted at dir. Local data
// lives under dir/local, the simulated cloud store under dir/cloud, and
// the persistent cache under dir/pcache. A nil opts uses DefaultOptions.
func Open(dir string, opts *Options) (*DB, error) {
	o := DefaultOptions()
	if opts != nil {
		o = *opts
	}
	return db.OpenAt(dir, o)
}

// NewWriteBatch returns an empty batch.
func NewWriteBatch() *WriteBatch { return batch.New() }
