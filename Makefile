# Developer entry points. `make check` is the full gate: vet plus the test
# suite under the race detector (the I/O pipeline paths are concurrent).

GO ?= go

.PHONY: all build test race vet bench check

all: build

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

check: build vet test race
