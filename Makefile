# Developer entry points. `make check` is the full gate: vet plus the test
# suite under the race detector (the I/O pipeline paths are concurrent).

GO ?= go

.PHONY: all build test race vet bench shardcheck vitalscheck scrubcheck scancheck flightcheck check

all: build

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Keyspace-sharding matrix: the sharded facade's merge/fan-out paths are
# concurrent, so run the shard suite under the race detector explicitly.
shardcheck:
	$(GO) test -race -count=1 -run 'Shard' ./internal/db ./internal/cache ./internal/pcache

# Vitals/observability suite: the sampler, the stats read surfaces, and the
# exposition endpoints are all concurrent with the engine — race-run them.
vitalscheck:
	$(GO) test -race -count=1 -run 'Vitals|Dump|Stats|LevelWriteAmp|Derive|Ring|Sampler|Windows|Prom' ./internal/db ./internal/vitals ./internal/obs

# Self-healing local-tier suite: corruption scrub/repair, disk-full
# degradation, and the local crash-point sweep — concurrent with the engine's
# background scrubber and drainer, so race-run it.
scrubcheck:
	$(GO) test -race -count=1 -run 'LocalFault|Scrub|Corrupt|Quarantine|Mirror|Spill|LocalDegraded|SyncFail|WriteBudget' ./internal/db ./internal/wal ./internal/storage ./internal/pcache

# Range-scan suite: sorted-view sidecars, the view-backed iterator, the
# loser-tree merge, and the scan model equivalence traces — view builds and
# invalidation run concurrently with scans, so race-run them.
scancheck:
	$(GO) test -race -count=1 -run 'View|Scan|Merging' ./internal/db ./internal/sstable ./internal/manifest

# Flight-recorder suite: the event ring tap, detector hysteresis, bundle
# commit, and the health/incident surfaces all run concurrently with the
# engine and the vitals sampler — race-run them end to end.
flightcheck:
	$(GO) test -race -count=1 -run 'Flight|Incident|Detector|Bundle|Doctor|Health|Recorder|Ring|Rotat' ./internal/flight ./internal/event ./internal/db ./internal/obs

check: build vet test race shardcheck vitalscheck scrubcheck scancheck flightcheck
