package rocksmash_test

import (
	"errors"
	"fmt"
	"testing"

	"rocksmash"
)

func open(t *testing.T, opts *rocksmash.Options) *rocksmash.DB {
	t.Helper()
	d, err := rocksmash.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestPublicAPIRoundTrip(t *testing.T) {
	d := open(t, nil)
	if err := d.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := d.Get([]byte("k"))
	if err != nil || string(v) != "v" {
		t.Fatalf("get = %q, %v", v, err)
	}
	if _, err := d.Get([]byte("missing")); !errors.Is(err, rocksmash.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestPublicAPIBatchAndIterator(t *testing.T) {
	d := open(t, nil)
	b := rocksmash.NewWriteBatch()
	for i := 0; i < 10; i++ {
		b.Set([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprint(i)))
	}
	if err := d.Write(b); err != nil {
		t.Fatal(err)
	}
	it, err := d.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	n := 0
	for it.First(); it.Valid(); it.Next() {
		n++
	}
	if n != 10 {
		t.Fatalf("scanned %d", n)
	}
}

func TestPublicAPIPolicies(t *testing.T) {
	for _, p := range []rocksmash.Policy{
		rocksmash.PolicyMash, rocksmash.PolicyLocalOnly,
		rocksmash.PolicyCloudOnly, rocksmash.PolicyCloudLRU,
	} {
		t.Run(p.String(), func(t *testing.T) {
			opts := rocksmash.DefaultOptions()
			opts.Policy = p
			opts.CloudLatency = rocksmash.LatencyModel{} // fast tests
			d := open(t, &opts)
			if err := d.Put([]byte("a"), []byte("b")); err != nil {
				t.Fatal(err)
			}
			if err := d.Flush(); err != nil {
				t.Fatal(err)
			}
			v, err := d.Get([]byte("a"))
			if err != nil || string(v) != "b" {
				t.Fatalf("get = %q, %v", v, err)
			}
		})
	}
}

func TestPublicAPISnapshotAndMetrics(t *testing.T) {
	d := open(t, nil)
	d.Put([]byte("x"), []byte("1"))
	s := d.GetSnapshot()
	defer s.Release()
	d.Put([]byte("x"), []byte("2"))
	v, err := s.Get([]byte("x"))
	if err != nil || string(v) != "1" {
		t.Fatalf("snapshot get = %q, %v", v, err)
	}
	m := d.Metrics()
	if m.Policy != "mash" || m.LastSeq == 0 {
		t.Fatalf("metrics = %+v", m)
	}
}
