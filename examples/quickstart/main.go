// Quickstart: open a store, write, read, scan, and inspect placement.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"rocksmash"
)

func main() {
	dir, err := os.MkdirTemp("", "rocksmash-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// nil options = PolicyMash defaults: hot data local, cold data cloud.
	db, err := rocksmash.Open(dir, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Point writes and reads.
	if err := db.Put([]byte("user:1"), []byte(`{"name":"ada"}`)); err != nil {
		log.Fatal(err)
	}
	if err := db.Put([]byte("user:2"), []byte(`{"name":"grace"}`)); err != nil {
		log.Fatal(err)
	}
	v, err := db.Get([]byte("user:1"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user:1 = %s\n", v)

	// Atomic batches.
	b := rocksmash.NewWriteBatch()
	b.Set([]byte("user:3"), []byte(`{"name":"edsger"}`))
	b.Delete([]byte("user:2"))
	if err := db.Write(b); err != nil {
		log.Fatal(err)
	}

	// Range scans.
	it, err := db.NewIterator()
	if err != nil {
		log.Fatal(err)
	}
	defer it.Close()
	fmt.Println("all users:")
	for it.Seek([]byte("user:")); it.Valid(); it.Next() {
		fmt.Printf("  %s = %s\n", it.Key(), it.Value())
	}
	if it.Err() != nil {
		log.Fatal(it.Err())
	}

	// Snapshots give consistent reads while writes continue.
	snap := db.GetSnapshot()
	defer snap.Release()
	db.Put([]byte("user:1"), []byte(`{"name":"ada lovelace"}`))
	old, _ := snap.Get([]byte("user:1"))
	cur, _ := db.Get([]byte("user:1"))
	fmt.Printf("snapshot sees %s; head sees %s\n", old, cur)

	// Where did the data land?
	m := db.Metrics()
	fmt.Printf("placement: %d bytes local, %d bytes cloud (policy=%s)\n",
		m.LocalBytes, m.CloudBytes, m.Policy)
}
