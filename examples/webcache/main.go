// Webcache: the paper's motivating web-scale scenario — a large,
// read-heavy, highly skewed working set that would be too expensive to
// keep entirely on local SSD. The store keeps the hot head of the zipfian
// distribution on local media (upper levels + LSM-aware persistent cache)
// while the long tail lives in cloud storage.
//
//	go run ./examples/webcache
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"time"

	"rocksmash"
)

const (
	pages    = 30000
	pageSize = 512
	requests = 8000
)

// zipf picks page indices with web-like popularity skew (theta 0.99),
// scrambled so hot pages are spread across the keyspace.
type zipf struct {
	rng   *rand.Rand
	n     float64
	zetan float64
	eta   float64
	alpha float64
}

func newZipf(n int, seed int64) *zipf {
	const theta = 0.99
	z := &zipf{rng: rand.New(rand.NewSource(seed)), n: float64(n)}
	for i := 1; i <= n; i++ {
		z.zetan += 1 / math.Pow(float64(i), theta)
	}
	zeta2 := 1 + 1/math.Pow(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/z.n, 1-theta)) / (1 - zeta2/z.zetan)
	return z
}

func (z *zipf) next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, 0.99) {
		return 1
	}
	return uint64(z.n * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

func pageKey(i uint64) []byte {
	h := i * 0x9e3779b97f4a7c15
	h ^= h >> 32
	return []byte(fmt.Sprintf("page%019d", h))
}

func main() {
	dir, err := os.MkdirTemp("", "rocksmash-webcache-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	opts := rocksmash.DefaultOptions()
	opts.MemtableBytes = 1 << 20  // small geometry so tiering shows up at demo scale
	opts.LevelBaseBytes = 4 << 20 // L1 target
	opts.TargetFileBytes = 1 << 20
	opts.PCacheBytes = 8 << 20

	db, err := rocksmash.Open(dir, &opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Ingest the page corpus.
	fmt.Printf("ingesting %d pages...\n", pages)
	page := make([]byte, pageSize)
	for i := 0; i < pages; i++ {
		copy(page, fmt.Sprintf("<html>page %d</html>", i))
		if err := db.Put(pageKey(uint64(i)), page); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.CompactAll(); err != nil {
		log.Fatal(err)
	}
	m := db.Metrics()
	fmt.Printf("corpus placed: %.1f MiB local, %.1f MiB cloud\n",
		float64(m.LocalBytes)/(1<<20), float64(m.CloudBytes)/(1<<20))

	// Serve a zipfian request stream (theta 0.99 ≈ web popularity).
	fmt.Printf("serving %d zipfian requests...\n", requests)
	z := newZipf(pages, 7)
	start := time.Now()
	var slow int
	for i := 0; i < requests; i++ {
		s := time.Now()
		if _, err := db.Get(pageKey(z.next())); err != nil && err != rocksmash.ErrNotFound {
			log.Fatal(err)
		}
		if time.Since(s) > 2*time.Millisecond {
			slow++ // paid a cloud round trip
		}
	}
	dur := time.Since(start)

	m = db.Metrics()
	fmt.Printf("\nserved %.0f req/s; %.2f%% of requests hit cloud latency\n",
		float64(requests)/dur.Seconds(), 100*float64(slow)/requests)
	fmt.Printf("persistent cache: hit ratio %.3f, %.1f MiB cached, %d B of index\n",
		m.PCacheHit, float64(m.PCacheUsed)/(1<<20), m.PCacheMeta)
	fmt.Printf("in-memory block cache hit ratio: %.3f\n", m.BlockHit)
	if rep, ok := db.CloudCost(); ok {
		fmt.Println("cloud bill:", rep)
	}
}
