// Sessionstore: a write-heavy workload — user sessions that are created,
// repeatedly updated, and eventually deleted. Shows the write path (WAL +
// memtable + flushes), tombstone reclamation through compaction, and the
// cost report that motivates keeping the bulk of data in cloud storage.
//
//	go run ./examples/sessionstore
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"rocksmash"
)

type session struct {
	User     int       `json:"user"`
	LastSeen time.Time `json:"last_seen"`
	Payload  string    `json:"payload"`
}

const (
	users   = 5000
	actions = 40000
)

func sessionKey(user int) []byte { return []byte(fmt.Sprintf("sess:%08d", user)) }

func main() {
	dir, err := os.MkdirTemp("", "rocksmash-sessions-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	opts := rocksmash.DefaultOptions()
	opts.MemtableBytes = 1 << 20
	opts.LevelBaseBytes = 4 << 20
	opts.TargetFileBytes = 1 << 20

	db, err := rocksmash.Open(dir, &opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(99))
	live := map[int]bool{}
	start := time.Now()
	var creates, updates, logouts int
	for i := 0; i < actions; i++ {
		user := rng.Intn(users)
		switch {
		case !live[user]:
			// Login: create the session.
			s := session{User: user, LastSeen: time.Now(), Payload: randPayload(rng)}
			put(db, sessionKey(user), s)
			live[user] = true
			creates++
		case rng.Intn(10) == 0:
			// Logout: delete the session.
			if err := db.Delete(sessionKey(user)); err != nil {
				log.Fatal(err)
			}
			delete(live, user)
			logouts++
		default:
			// Activity: update the session in place.
			s := session{User: user, LastSeen: time.Now(), Payload: randPayload(rng)}
			put(db, sessionKey(user), s)
			updates++
		}
	}
	dur := time.Since(start)
	fmt.Printf("%d actions in %s (%.0f ops/s): %d logins, %d updates, %d logouts\n",
		actions, dur.Round(time.Millisecond), float64(actions)/dur.Seconds(),
		creates, updates, logouts)

	// Compact away the dead versions and count what survived.
	if err := db.CompactAll(); err != nil {
		log.Fatal(err)
	}
	it, err := db.NewIterator()
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	for it.Seek([]byte("sess:")); it.Valid(); it.Next() {
		n++
	}
	if err := it.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live sessions after compaction: %d (expected %d)\n", n, len(live))

	m := db.Metrics()
	fmt.Printf("tree: files/level=%v, %.1f MiB local, %.1f MiB cloud, %d flushes, %d compactions\n",
		m.LevelFiles, float64(m.LocalBytes)/(1<<20), float64(m.CloudBytes)/(1<<20),
		m.Flushes, m.Compactions)
	if rep, ok := db.CloudCost(); ok {
		fmt.Println("cloud bill:", rep)
	}
}

func put(db *rocksmash.DB, key []byte, s session) {
	v, err := json.Marshal(s)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Put(key, v); err != nil {
		log.Fatal(err)
	}
}

func randPayload(rng *rand.Rand) string {
	b := make([]byte, 200)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}
