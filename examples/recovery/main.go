// Recovery: demonstrates the extended write-ahead log. The program writes
// data that never reaches an SSTable, crashes the store, and then recovers
// it twice — once with stock serial WAL replay and once with the eWAL's
// parallel replay — verifying both recover every record and reporting the
// time each took.
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"rocksmash"
)

const (
	records = 20000
	valLen  = 1024
)

func key(i int) []byte { return []byte(fmt.Sprintf("record%010d", i)) }

func populateAndCrash(dir string, opts rocksmash.Options) {
	db, err := rocksmash.Open(dir, &opts)
	if err != nil {
		log.Fatal(err)
	}
	val := make([]byte, valLen)
	for i := 0; i < records; i++ {
		copy(val, fmt.Sprintf("value-%d", i))
		if err := db.Put(key(i), val); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("  wrote %d records (~%d MiB of WAL), crashing without flush\n",
		records, records*(valLen+32)>>20)
	db.Crash()
}

func recoverAndVerify(dir string, opts rocksmash.Options) time.Duration {
	db, err := rocksmash.Open(dir, &opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	rep := db.RecoveryReport()
	dur := rep.Duration
	fmt.Printf("  recovered in %s: %s\n", dur.Round(time.Millisecond), rep)
	missing := 0
	for i := 0; i < records; i++ {
		if _, err := db.Get(key(i)); err != nil {
			missing++
		}
	}
	if missing != 0 {
		log.Fatalf("DATA LOSS: %d records missing", missing)
	}
	fmt.Printf("  verified: all %d records intact\n", records)
	return dur
}

func main() {
	base, err := os.MkdirTemp("", "rocksmash-recovery-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)

	common := rocksmash.DefaultOptions()
	common.MemtableBytes = 1 << 30 // keep everything in the WAL for the demo
	common.WALSegmentBytes = 2 << 20

	fmt.Println("[1] stock WAL: serial replay")
	serial := common
	serial.ExtendedWAL = false
	serial.RecoveryParallelism = 1
	dirA := filepath.Join(base, "serial")
	populateAndCrash(dirA, serial)
	tSerial := recoverAndVerify(dirA, serial)

	fmt.Println("[2] extended WAL: parallel replay (4 goroutines)")
	parallel := common
	parallel.ExtendedWAL = true
	parallel.RecoveryParallelism = 4
	dirB := filepath.Join(base, "parallel")
	populateAndCrash(dirB, parallel)
	tParallel := recoverAndVerify(dirB, parallel)

	if tParallel > 0 {
		fmt.Printf("\nspeedup from eWAL parallel recovery: %.2fx\n",
			tSerial.Seconds()/tParallel.Seconds())
	}
}
