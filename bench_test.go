// Benchmarks: one testing.B benchmark per table/figure of the paper's
// evaluation (DESIGN.md §4). Each benchmark measures the core operation of
// its experiment; the full multi-scheme report for a figure is produced by
// the harness (`go run ./cmd/mashbench -exp figN`).
//
// Run all:  go test -bench=. -benchmem
package rocksmash_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"rocksmash"
	"rocksmash/internal/pcache"
	"rocksmash/internal/storage"
	"rocksmash/internal/ycsb"
)

// benchOptions uses a fast cloud model so benchmarks finish quickly while
// preserving the local ≪ cloud gap.
func benchOptions(p rocksmash.Policy) rocksmash.Options {
	o := rocksmash.DefaultOptions()
	o.Policy = p
	o.MemtableBytes = 1 << 20
	o.LevelBaseBytes = 4 << 20
	o.TargetFileBytes = 1 << 20
	o.PCacheBytes = 16 << 20
	o.CloudLatency = rocksmash.LatencyModel{
		GetFirstByte:   500 * time.Microsecond,
		PutFirstByte:   800 * time.Microsecond,
		MetaRTT:        200 * time.Microsecond,
		ReadBandwidth:  400 << 20,
		WriteBandwidth: 400 << 20,
	}
	return o
}

func openBench(b *testing.B, p rocksmash.Policy) *rocksmash.DB {
	b.Helper()
	d, err := rocksmash.Open(b.TempDir(), ptr(benchOptions(p)))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { d.Close() })
	return d
}

func ptr(o rocksmash.Options) *rocksmash.Options { return &o }

func loadBench(b *testing.B, d *rocksmash.DB, n, valLen int) {
	b.Helper()
	val := make([]byte, valLen)
	for i := 0; i < n; i++ {
		if err := d.Put(ycsb.Key(uint64(i)), val); err != nil {
			b.Fatal(err)
		}
	}
	if err := d.CompactAll(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig1StorageGap measures raw 64 KiB object GETs on each tier —
// the motivation gap behind hybrid placement.
func BenchmarkFig1StorageGap(b *testing.B) {
	obj := make([]byte, 64<<10)
	run := func(b *testing.B, be storage.Backend) {
		if err := storage.WriteObject(be, "obj", obj); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(obj)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := be.ReadAll("obj"); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("local", func(b *testing.B) {
		be, err := storage.NewLocal(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		run(b, be)
	})
	b.Run("cloud", func(b *testing.B) {
		be, err := storage.NewCloud(b.TempDir(), benchOptions(rocksmash.PolicyMash).CloudLatency, storage.DefaultCost())
		if err != nil {
			b.Fatal(err)
		}
		run(b, be)
	})
}

// BenchmarkFig5FillRandom measures random-write throughput per scheme.
func BenchmarkFig5FillRandom(b *testing.B) {
	for _, p := range []rocksmash.Policy{rocksmash.PolicyLocalOnly, rocksmash.PolicyMash, rocksmash.PolicyCloudLRU, rocksmash.PolicyCloudOnly} {
		b.Run(p.String(), func(b *testing.B) {
			d := openBench(b, p)
			rng := rand.New(rand.NewSource(1))
			val := make([]byte, 400)
			b.SetBytes(400)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.Put(ycsb.Key(uint64(rng.Intn(1<<20))), val); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6ReadRandom measures zipfian point reads per scheme over a
// pre-loaded, compacted dataset.
func BenchmarkFig6ReadRandom(b *testing.B) {
	const records = 10000
	for _, p := range []rocksmash.Policy{rocksmash.PolicyLocalOnly, rocksmash.PolicyMash, rocksmash.PolicyCloudLRU, rocksmash.PolicyCloudOnly} {
		b.Run(p.String(), func(b *testing.B) {
			d := openBench(b, p)
			loadBench(b, d, records, 400)
			gen := ycsb.NewGenerator(ycsb.WorkloadC, records, 400, 7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op := gen.Next()
				if _, err := d.Get(op.Key); err != nil && err != rocksmash.ErrNotFound {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7ReadLatency is fig6's workload reporting tail latency.
func BenchmarkFig7ReadLatency(b *testing.B) {
	const records = 10000
	for _, p := range []rocksmash.Policy{rocksmash.PolicyMash, rocksmash.PolicyCloudOnly} {
		b.Run(p.String(), func(b *testing.B) {
			d := openBench(b, p)
			loadBench(b, d, records, 400)
			gen := ycsb.NewGenerator(ycsb.WorkloadC, records, 400, 7)
			var worst time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := time.Now()
				if _, err := d.Get(gen.Next().Key); err != nil && err != rocksmash.ErrNotFound {
					b.Fatal(err)
				}
				if el := time.Since(s); el > worst {
					worst = el
				}
			}
			b.ReportMetric(float64(worst.Microseconds()), "max-us")
		})
	}
}

// BenchmarkFig8YCSB runs each core workload mix against PolicyMash.
func BenchmarkFig8YCSB(b *testing.B) {
	const records = 10000
	for _, wl := range []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadB, ycsb.WorkloadC, ycsb.WorkloadD, ycsb.WorkloadE, ycsb.WorkloadF} {
		b.Run(wl.Name, func(b *testing.B) {
			d := openBench(b, rocksmash.PolicyMash)
			loadBench(b, d, records, 400)
			gen := ycsb.NewGenerator(wl, records, 400, 7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op := gen.Next()
				switch op.Kind {
				case ycsb.OpRead:
					if _, err := d.Get(op.Key); err != nil && err != rocksmash.ErrNotFound {
						b.Fatal(err)
					}
				case ycsb.OpUpdate, ycsb.OpInsert:
					if err := d.Put(op.Key, op.Value); err != nil {
						b.Fatal(err)
					}
				case ycsb.OpScan:
					it, err := d.NewIterator()
					if err != nil {
						b.Fatal(err)
					}
					it.Seek(op.Key)
					for j := 0; j < op.ScanLen && it.Valid(); j++ {
						it.Next()
					}
					if err := it.Close(); err != nil {
						b.Fatal(err)
					}
				case ycsb.OpReadModifyWrite:
					if _, err := d.Get(op.Key); err != nil && err != rocksmash.ErrNotFound {
						b.Fatal(err)
					}
					if err := d.Put(op.Key, op.Value); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkFig9HitRatio exercises the two persistent-cache designs on a
// zipfian block trace and reports their hit ratios and index cost.
func BenchmarkFig9HitRatio(b *testing.B) {
	const files = 16
	const blocksPerFile = 256
	mk := func(b *testing.B, c pcache.BlockCache) {
		block := make([]byte, 4096)
		z := ycsb.NewZipfian(rand.New(rand.NewSource(5)), files*blocksPerFile, 0.99)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := z.Next()
			file, off := n/blocksPerFile+1, (n%blocksPerFile)*4096
			if _, ok := c.Get(file, off); !ok {
				c.Put(file, off, block)
			}
		}
		b.StopTimer()
		b.ReportMetric(c.Stats().HitRatio(), "hit-ratio")
		blocks := c.UsedBytes() / 4096
		if blocks > 0 {
			b.ReportMetric(float64(c.MetadataBytes())/float64(blocks), "meta-B/blk")
		}
	}
	b.Run("lsm-aware", func(b *testing.B) {
		c, err := pcache.New(pcache.Options{Dir: b.TempDir(), CapacityBytes: 2 << 20, RegionBytes: 128 << 10})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		mk(b, c)
	})
	b.Run("generic-lru", func(b *testing.B) {
		c, err := pcache.NewGenericLRU(b.TempDir(), 2<<20)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		mk(b, c)
	})
}

// BenchmarkFig10CompactionAware measures the mixed read/write stream with
// and without compaction inheritance.
func BenchmarkFig10CompactionAware(b *testing.B) {
	const records = 8000
	for _, inherit := range []bool{true, false} {
		name := "inherit"
		if !inherit {
			name = "invalidate-only"
		}
		b.Run(name, func(b *testing.B) {
			o := benchOptions(rocksmash.PolicyMash)
			o.CompactionInheritance = inherit
			o.LocalLevels = -1
			d, err := rocksmash.Open(b.TempDir(), &o)
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			loadBench(b, d, records, 400)
			gen := ycsb.NewGenerator(ycsb.WorkloadA, records, 400, 7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op := gen.Next()
				if op.Kind == ycsb.OpRead {
					if _, err := d.Get(op.Key); err != nil && err != rocksmash.ErrNotFound {
						b.Fatal(err)
					}
				} else if err := d.Put(op.Key, op.Value); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			hit, _, _ := d.PCacheStats()
			b.ReportMetric(hit, "pcache-hit")
		})
	}
}

// BenchmarkFig11Recovery measures crash-recovery over a fixed WAL volume,
// serial vs parallel.
func BenchmarkFig11Recovery(b *testing.B) {
	const walBytes = 8 << 20
	for _, mode := range []struct {
		name     string
		extended bool
		par      int
	}{{"serial", false, 1}, {"parallel-x4", true, 4}} {
		b.Run(mode.name, func(b *testing.B) {
			dir := b.TempDir()
			o := benchOptions(rocksmash.PolicyMash)
			o.MemtableBytes = 1 << 30
			o.WALSegmentBytes = 1 << 20
			o.ExtendedWAL = mode.extended
			o.RecoveryParallelism = mode.par
			d, err := rocksmash.Open(dir, &o)
			if err != nil {
				b.Fatal(err)
			}
			val := make([]byte, 1024)
			for i := 0; i < walBytes/(1024+32); i++ {
				if err := d.Put(ycsb.Key(uint64(i)), val); err != nil {
					b.Fatal(err)
				}
			}
			d.Crash()
			b.SetBytes(walBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d2, err := rocksmash.Open(dir, &o)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if d2.RecoveryReport().RecoveredKeys == 0 {
					b.Fatal("nothing recovered")
				}
				d2.Crash() // leave the WAL in place for the next iteration
				b.StartTimer()
			}
		})
	}
}

// BenchmarkFig12Skew reads at different zipfian skews under PolicyMash.
func BenchmarkFig12Skew(b *testing.B) {
	const records = 10000
	for _, theta := range []float64{0.6, 0.99} {
		b.Run(fmt.Sprintf("theta=%.2f", theta), func(b *testing.B) {
			d := openBench(b, rocksmash.PolicyMash)
			loadBench(b, d, records, 400)
			gen := ycsb.NewGeneratorWithTheta(ycsb.WorkloadC, records, 400, 7, theta)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Get(gen.Next().Key); err != nil && err != rocksmash.ErrNotFound {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTab2Metadata measures the admission path of both persistent
// caches and reports their per-block index footprint.
func BenchmarkTab2Metadata(b *testing.B) {
	block := make([]byte, 4096)
	b.Run("lsm-aware-put", func(b *testing.B) {
		c, err := pcache.New(pcache.Options{Dir: b.TempDir(), CapacityBytes: 64 << 20, RegionBytes: 256 << 10})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Put(uint64(i/1000+1), uint64(i%1000)*4096, block)
		}
		b.StopTimer()
		if n := c.CachedBlocks(); n > 0 {
			b.ReportMetric(float64(c.MetadataBytes())/float64(n), "meta-B/blk")
		}
	})
	b.Run("generic-lru-put", func(b *testing.B) {
		c, err := pcache.NewGenericLRU(b.TempDir(), 64<<20)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Put(uint64(i/1000+1), uint64(i%1000)*4096, block)
		}
		b.StopTimer()
		if n := c.CachedBlocks(); n > 0 {
			b.ReportMetric(float64(c.MetadataBytes())/float64(n), "meta-B/blk")
		}
	})
}

// BenchmarkTab3Cost runs a read-mostly mix against PolicyMash and
// PolicyCloudOnly, reporting simulated cloud dollars per million ops.
func BenchmarkTab3Cost(b *testing.B) {
	const records = 8000
	for _, p := range []rocksmash.Policy{rocksmash.PolicyMash, rocksmash.PolicyCloudOnly} {
		b.Run(p.String(), func(b *testing.B) {
			d := openBench(b, p)
			loadBench(b, d, records, 400)
			gen := ycsb.NewGenerator(ycsb.WorkloadB, records, 400, 7)
			startCost := 0.0
			if rep, ok := d.CloudCost(); ok {
				startCost = rep.RequestCost + rep.EgressCost
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op := gen.Next()
				if op.Kind == ycsb.OpRead {
					if _, err := d.Get(op.Key); err != nil && err != rocksmash.ErrNotFound {
						b.Fatal(err)
					}
				} else if err := d.Put(op.Key, op.Value); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if rep, ok := d.CloudCost(); ok {
				delta := rep.RequestCost + rep.EgressCost - startCost
				b.ReportMetric(delta/float64(b.N)*1e6, "$-per-Mop")
			}
		})
	}
}

// BenchmarkTab4Reliability measures the full crash → recover → verify
// cycle that the reliability table asserts.
func BenchmarkTab4Reliability(b *testing.B) {
	const records = 2000
	dir := b.TempDir()
	o := benchOptions(rocksmash.PolicyMash)
	o.MemtableBytes = 1 << 30
	d, err := rocksmash.Open(dir, &o)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < records; i++ {
		if err := d.Put(ycsb.Key(uint64(i)), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	d.Crash()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d2, err := rocksmash.Open(dir, &o)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < records; j++ {
			if _, err := d2.Get(ycsb.Key(uint64(j))); err != nil {
				b.Fatalf("record %d lost: %v", j, err)
			}
		}
		d2.Crash()
	}
}

// loadColdDir builds a directory holding several uncompacted cloud-tier L0
// tables, so a reopen can drive (and time) one large compaction or a cold
// scan under chosen I/O pipeline knobs.
func loadColdDir(b *testing.B, records int) string {
	b.Helper()
	dir := b.TempDir()
	o := benchOptions(rocksmash.PolicyCloudOnly)
	o.L0CompactTrigger = 100 // keep everything in L0 during the load
	o.L0StallFiles = 300
	d, err := rocksmash.Open(dir, &o)
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 400)
	for i := 0; i < records; i++ {
		if err := d.Put(ycsb.Key(uint64(i)), val); err != nil {
			b.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := d.Close(); err != nil {
		b.Fatal(err)
	}
	return dir
}

// BenchmarkPipelinedCompaction times one cloud-tier compaction pass with
// the I/O pipeline off (serial block GETs, serial uploads) and on
// (prefetched span GETs, overlapped uploads).
func BenchmarkPipelinedCompaction(b *testing.B) {
	const records = 8000
	variants := []struct {
		name               string
		prefetch, parallel int
	}{
		{"serial", 0, 1},
		{"pipelined", 16, 4},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := loadColdDir(b, records)
				o := benchOptions(rocksmash.PolicyCloudOnly)
				o.CompactionPrefetchBlocks = v.prefetch
				o.UploadParallelism = v.parallel
				d, err := rocksmash.Open(dir, &o)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := d.CompactAll(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := d.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkColdScan times a full scan of a cloud-resident tree through a
// cold block cache, without and with iterator readahead.
func BenchmarkColdScan(b *testing.B) {
	const records = 8000
	for _, ra := range []int{0, 16} {
		name := "serial"
		if ra > 0 {
			name = fmt.Sprintf("readahead%d", ra)
		}
		b.Run(name, func(b *testing.B) {
			dir := loadColdDir(b, records)
			o := benchOptions(rocksmash.PolicyCloudOnly)
			o.IteratorReadaheadBlocks = ra
			{
				d, err := rocksmash.Open(dir, &o)
				if err != nil {
					b.Fatal(err)
				}
				if err := d.CompactAll(); err != nil {
					b.Fatal(err)
				}
				if err := d.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d, err := rocksmash.Open(dir, &o) // reopen: caches start cold
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				it, err := d.NewIterator()
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				for it.First(); it.Valid(); it.Next() {
					n++
				}
				if err := it.Close(); err != nil {
					b.Fatal(err)
				}
				if n != records {
					b.Fatalf("scanned %d records, want %d", n, records)
				}
				b.StopTimer()
				if err := d.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
