module rocksmash

go 1.22
